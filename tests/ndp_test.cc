#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "columnar/encoding.h"
#include "columnar/table_loader.h"
#include "engine/database.h"
#include "exec/executor.h"
#include "ndp/ndp_engine.h"
#include "ndp/ndp_protocol.h"
#include "store/page_codec.h"

namespace cloudiq {
namespace {

using ndp::AggOp;
using ndp::CmpOp;
using ndp::ExprOp;
using ndp::NdpAggregate;
using ndp::NdpColumn;
using ndp::NdpEngine;
using ndp::NdpExpr;
using ndp::NdpMode;
using ndp::NdpPageRef;
using ndp::NdpRequest;
using ndp::NdpResult;

// --- protocol --------------------------------------------------------------

NdpRequest TwoColumnRequest() {
  NdpRequest req;
  NdpColumn k;
  k.name = "k";
  k.type = ColumnType::kInt64;
  k.projected = false;
  k.pages = {{"data/00/1", 0, 100}, {"data/00/2", 100, 50}};
  NdpColumn v;
  v.name = "v";
  v.type = ColumnType::kDouble;
  v.projected = true;
  v.pages = {{"data/01/1", 0, 150}};
  req.columns = {k, v};
  req.filter = NdpExpr::And({NdpExpr::CmpInt(0, CmpOp::kGe, 10),
                             NdpExpr::CmpInt(0, CmpOp::kLe, 90)});
  return req;
}

TEST(NdpProtocolTest, RequestRoundTrip) {
  NdpRequest req = TwoColumnRequest();
  NdpExpr note_cmp;
  note_cmp.op = ExprOp::kCmp;
  note_cmp.cmp = CmpOp::kNe;
  note_cmp.column = 1;
  note_cmp.literal_type = ColumnType::kDouble;
  note_cmp.double_literal = 2.5;
  NdpExpr inner = req.filter;
  NdpExpr negated;
  negated.op = ExprOp::kNot;
  negated.children = {note_cmp};
  req.filter = NdpExpr{};
  req.filter.op = ExprOp::kOr;
  req.filter.children = {inner, negated};
  req.aggregates = {{AggOp::kCount, 0}, {AggOp::kSum, 1}};

  Result<NdpRequest> round = NdpRequest::Deserialize(req.Serialize());
  ASSERT_TRUE(round.ok()) << round.status().ToString();
  const NdpRequest& r = round.value();
  ASSERT_EQ(r.columns.size(), 2u);
  EXPECT_EQ(r.columns[0].name, "k");
  EXPECT_FALSE(r.columns[0].projected);
  ASSERT_EQ(r.columns[0].pages.size(), 2u);
  EXPECT_EQ(r.columns[0].pages[1].key, "data/00/2");
  EXPECT_EQ(r.columns[0].pages[1].first_row, 100u);
  EXPECT_EQ(r.columns[0].pages[1].row_count, 50u);
  EXPECT_EQ(r.columns[1].type, ColumnType::kDouble);
  ASSERT_EQ(r.filter.op, ExprOp::kOr);
  ASSERT_EQ(r.filter.children.size(), 2u);
  EXPECT_EQ(r.filter.children[0].op, ExprOp::kAnd);
  ASSERT_EQ(r.filter.children[1].op, ExprOp::kNot);
  EXPECT_DOUBLE_EQ(r.filter.children[1].children[0].double_literal, 2.5);
  ASSERT_EQ(r.aggregates.size(), 2u);
  EXPECT_EQ(r.aggregates[1].op, AggOp::kSum);
  EXPECT_EQ(r.aggregates[1].column, 1u);
}

TEST(NdpProtocolTest, RejectsMalformedRequests) {
  // Filter referencing a column the request does not carry.
  NdpRequest req = TwoColumnRequest();
  req.filter = NdpExpr::CmpInt(7, CmpOp::kEq, 1);
  EXPECT_FALSE(NdpRequest::Deserialize(req.Serialize()).ok());

  // Page refs must ascend without overlap.
  req = TwoColumnRequest();
  req.columns[0].pages = {{"data/00/1", 0, 100}, {"data/00/2", 50, 50}};
  EXPECT_FALSE(NdpRequest::Deserialize(req.Serialize()).ok());

  // Aggregate over a missing column.
  req = TwoColumnRequest();
  req.aggregates = {{AggOp::kSum, 9}};
  EXPECT_FALSE(NdpRequest::Deserialize(req.Serialize()).ok());

  // Trailing garbage.
  req = TwoColumnRequest();
  std::vector<uint8_t> bytes = req.Serialize();
  bytes.push_back(0);
  EXPECT_FALSE(NdpRequest::Deserialize(bytes).ok());
}

TEST(NdpProtocolTest, ResultRoundTripRowMode) {
  NdpResult res;
  res.is_aggregate = false;
  res.rows_matched = 3;
  ColumnVector ints;
  ints.type = ColumnType::kInt64;
  ints.ints = {1, -5, 42};
  ColumnVector doubles;
  doubles.type = ColumnType::kDouble;
  doubles.doubles = {0.5, 2.25, -1.0};
  ColumnVector strings;
  strings.type = ColumnType::kString;
  strings.strings = {"a", "", "promo"};
  res.columns = {ints, doubles, strings};

  Result<NdpResult> round = NdpResult::Deserialize(res.Serialize());
  ASSERT_TRUE(round.ok()) << round.status().ToString();
  const NdpResult& r = round.value();
  EXPECT_FALSE(r.is_aggregate);
  EXPECT_EQ(r.rows_matched, 3u);
  ASSERT_EQ(r.columns.size(), 3u);
  EXPECT_EQ(r.columns[0].ints, ints.ints);
  EXPECT_EQ(r.columns[1].doubles, doubles.doubles);
  EXPECT_EQ(r.columns[2].strings, strings.strings);
}

TEST(NdpProtocolTest, ResultRoundTripAggregateAndEmpty) {
  NdpResult res;
  res.is_aggregate = true;
  res.rows_matched = 0;
  ColumnVector count;
  count.type = ColumnType::kInt64;
  count.ints = {0};
  ColumnVector empty_min;
  empty_min.type = ColumnType::kDouble;  // no matching rows: zero-row col
  res.columns = {count, empty_min};

  Result<NdpResult> round = NdpResult::Deserialize(res.Serialize());
  ASSERT_TRUE(round.ok()) << round.status().ToString();
  EXPECT_TRUE(round.value().is_aggregate);
  ASSERT_EQ(round.value().columns.size(), 2u);
  EXPECT_EQ(round.value().columns[0].ints.size(), 1u);
  EXPECT_EQ(round.value().columns[1].type, ColumnType::kDouble);
  EXPECT_EQ(round.value().columns[1].doubles.size(), 0u);
}

// --- engine ----------------------------------------------------------------

// Encodes `values[begin, end)` the way stored cloud pages are framed.
std::vector<uint8_t> StoredFrame(const ColumnVector& values, size_t begin,
                                 size_t end) {
  ZoneMapEntry zone;
  return EncodePage(EncodeColumnPage(values, begin, end, &zone));
}

struct EngineFixture {
  EngineFixture() {
    k.type = ColumnType::kInt64;
    v.type = ColumnType::kDouble;
    for (int64_t i = 0; i < 200; ++i) {
      k.ints.push_back(i);
      v.doubles.push_back(i * 0.5);
    }
    k_pages = {StoredFrame(k, 0, 100), StoredFrame(k, 100, 200)};
    v_pages = {StoredFrame(v, 0, 100), StoredFrame(v, 100, 200)};

    req.columns.resize(2);
    req.columns[0].name = "k";
    req.columns[0].type = ColumnType::kInt64;
    req.columns[0].projected = false;
    req.columns[0].pages = {{"k/1", 0, 100}, {"k/2", 100, 100}};
    req.columns[1].name = "v";
    req.columns[1].type = ColumnType::kDouble;
    req.columns[1].projected = true;
    req.columns[1].pages = {{"v/1", 0, 100}, {"v/2", 100, 100}};
    req.filter = NdpExpr::And({NdpExpr::CmpInt(0, CmpOp::kGe, 90),
                               NdpExpr::CmpInt(0, CmpOp::kLe, 109)});
  }

  std::vector<const std::vector<uint8_t>*> Pages() const {
    return {&k_pages[0], &k_pages[1], &v_pages[0], &v_pages[1]};
  }

  ColumnVector k, v;
  std::vector<std::vector<uint8_t>> k_pages, v_pages;
  NdpRequest req;
};

TEST(NdpEngineTest, FilterAndProjectAcrossPages) {
  EngineFixture f;
  Result<NdpResult> result = NdpEngine::Evaluate(f.req, f.Pages());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const NdpResult& r = result.value();
  EXPECT_FALSE(r.is_aggregate);
  EXPECT_EQ(r.rows_matched, 20u);  // k in [90, 109] spans the page seam
  ASSERT_EQ(r.columns.size(), 1u);
  ASSERT_EQ(r.columns[0].doubles.size(), 20u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(r.columns[0].doubles[i], (90 + i) * 0.5);
  }
}

TEST(NdpEngineTest, Aggregates) {
  EngineFixture f;
  f.req.aggregates = {{AggOp::kCount, 0},
                      {AggOp::kSum, 1},
                      {AggOp::kMin, 1},
                      {AggOp::kMax, 1}};
  Result<NdpResult> result = NdpEngine::Evaluate(f.req, f.Pages());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const NdpResult& r = result.value();
  EXPECT_TRUE(r.is_aggregate);
  ASSERT_EQ(r.columns.size(), 4u);
  EXPECT_EQ(r.columns[0].ints[0], 20);
  double sum = 0;
  for (int64_t x = 90; x <= 109; ++x) sum += x * 0.5;
  EXPECT_DOUBLE_EQ(r.columns[1].doubles[0], sum);
  EXPECT_DOUBLE_EQ(r.columns[2].doubles[0], 45.0);
  EXPECT_DOUBLE_EQ(r.columns[3].doubles[0], 54.5);
}

TEST(NdpEngineTest, AggregateOverNoMatchesIsEmpty) {
  EngineFixture f;
  f.req.filter = NdpExpr::CmpInt(0, CmpOp::kGt, 10000);
  f.req.aggregates = {{AggOp::kCount, 0}, {AggOp::kMin, 1}};
  Result<NdpResult> result = NdpEngine::Evaluate(f.req, f.Pages());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().rows_matched, 0u);
  EXPECT_EQ(result.value().columns[0].ints[0], 0);       // COUNT = 0
  EXPECT_EQ(result.value().columns[1].doubles.size(), 0u);  // MIN = empty
}

TEST(NdpEngineTest, RejectsShapeMismatchAndBadPayloads) {
  EngineFixture f;
  // A ref whose row_count disagrees with the decoded page.
  f.req.columns[0].pages[0].row_count = 99;
  EXPECT_FALSE(NdpEngine::Evaluate(f.req, f.Pages()).ok());

  // Corrupted frame bytes fail the page codec.
  EngineFixture g;
  std::vector<uint8_t> bad = g.k_pages[0];
  bad[bad.size() / 2] ^= 0xff;
  std::vector<const std::vector<uint8_t>*> pages = {
      &bad, &g.k_pages[1], &g.v_pages[0], &g.v_pages[1]};
  EXPECT_FALSE(NdpEngine::Evaluate(g.req, pages).ok());
}

// --- store-side Select: latency, billing, ledger == meter -----------------

TEST(NdpStoreTest, SelectBillsMeterAndLedger) {
  SimEnvironment env;
  EngineFixture f;
  SimObjectStore& store = env.object_store();
  SimTime done = 0;
  // NOLINT(cloudiq-direct-put): store-level test seeds hand-framed
  // pages under a fixture prefix disjoint from keygen-issued keys.
  ASSERT_TRUE(store.Put("k/1", f.k_pages[0], 0, &done).ok());
  // NOLINT(cloudiq-direct-put): same fixture prefix as above.
  ASSERT_TRUE(store.Put("k/2", f.k_pages[1], done, &done).ok());
  // NOLINT(cloudiq-direct-put): same fixture prefix as above.
  ASSERT_TRUE(store.Put("v/1", f.v_pages[0], done, &done).ok());
  // NOLINT(cloudiq-direct-put): same fixture prefix as above.
  ASSERT_TRUE(store.Put("v/2", f.v_pages[1], done, &done).ok());

  // No engine installed: Select is NotSupported (fallback signal).
  std::vector<uint8_t> request = f.req.Serialize();
  SimTime sel_done = 0;
  EXPECT_TRUE(store.Select(request, done + 60, &sel_done)
                  .status()
                  .IsNotSupported());

  NdpEngine engine;
  store.set_ndp_engine(&engine);
  ASSERT_TRUE(store.has_ndp_engine());
  uint64_t scanned = 0, returned = 0;
  Result<std::vector<uint8_t>> result =
      store.Select(request, done + 60, &sel_done, &scanned, &returned);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(sel_done, done + 60);

  uint64_t stored = f.k_pages[0].size() + f.k_pages[1].size() +
                    f.v_pages[0].size() + f.v_pages[1].size();
  EXPECT_EQ(scanned, stored);
  EXPECT_EQ(returned, result.value().size());
  EXPECT_LT(returned, scanned);  // the point of near-data processing

  // Server-side evaluation matches the client-side engine.
  Result<NdpResult> decoded = NdpResult::Deserialize(result.value());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().rows_matched, 20u);

  // Meter and ledger agree on the new request class.
  const CostMeter& meter = env.cost_meter();
  EXPECT_EQ(meter.s3_selects(), 1u);
  EXPECT_EQ(meter.select_scanned_bytes(), scanned);
  EXPECT_EQ(meter.select_returned_bytes(), returned);
  CostLedger& ledger = env.telemetry().ledger();
  CostLedger::Entry total = ledger.GrandTotal();
  EXPECT_EQ(total.selects, 1u);
  EXPECT_EQ(total.select_scanned_bytes, scanned);
  EXPECT_EQ(total.select_returned_bytes, returned);
  // Puts and the select are both mirrored into the ledger, so the two
  // accountings of request dollars agree to the cent and beyond.
  EXPECT_NEAR(total.RequestUsd(ledger.prices()), meter.S3RequestUsd(), 1e-9);
}

// --- executor pushdown -----------------------------------------------------

Database::Options NdpDbOptions(NdpMode mode) {
  Database::Options options;
  options.user_storage = UserStorage::kObjectStore;
  options.page_size = 8192;
  options.blockmap_fanout = 16;
  options.enable_ocm = false;
  options.ndp_mode = mode;
  return options;
}

void LoadWide(Database* db) {
  TableSchema schema;
  schema.name = "t";
  schema.table_id = 7;
  schema.columns = {{"k", ColumnType::kInt64},
                    {"v", ColumnType::kDecimal},
                    {"note", ColumnType::kString}};
  Transaction* txn = db->Begin();
  TableLoader loader = db->NewTableLoader(txn, schema);
  Batch batch;
  batch.AddColumn("k", {ColumnType::kInt64, {}, {}, {}});
  batch.AddColumn("v", {ColumnType::kDecimal, {}, {}, {}});
  batch.AddColumn("note", {ColumnType::kString, {}, {}, {}});
  for (int64_t i = 0; i < 20000; ++i) {
    batch.columns[0].ints.push_back(i);
    batch.columns[1].ints.push_back((i * 7) % 99991);
    batch.columns[2].strings.push_back(i % 3 == 0 ? "promo" : "reg");
  }
  ASSERT_TRUE(loader.Append(batch.columns).ok());
  ASSERT_TRUE(loader.Finish(db->system()).ok());
  ASSERT_TRUE(db->Commit(txn).ok());
}

Result<Batch> RangeScan(Database* db, std::vector<std::string> columns,
                        int64_t lo, int64_t hi, QueryContext* out_ctx) {
  Transaction* txn = db->Begin();
  QueryContext ctx = db->NewQueryContext(txn, "scan");
  Batch out;
  {
    ScopedQueryAttribution scope(&ctx);
    CLOUDIQ_ASSIGN_OR_RETURN(TableReader reader, ctx.OpenTable(7));
    CLOUDIQ_ASSIGN_OR_RETURN(
        out, ScanTable(&ctx, &reader, columns, ScanRange{"k", lo, hi}));
  }
  CLOUDIQ_RETURN_IF_ERROR(db->Commit(txn));
  if (out_ctx != nullptr) *out_ctx = std::move(ctx);
  return out;
}

void ExpectSameBatch(const Batch& a, const Batch& b) {
  ASSERT_EQ(a.names, b.names);
  ASSERT_EQ(a.columns.size(), b.columns.size());
  for (size_t c = 0; c < a.columns.size(); ++c) {
    EXPECT_EQ(a.columns[c].type, b.columns[c].type) << c;
    EXPECT_EQ(a.columns[c].ints, b.columns[c].ints) << c;
    EXPECT_EQ(a.columns[c].doubles, b.columns[c].doubles) << c;
    EXPECT_EQ(a.columns[c].strings, b.columns[c].strings) << c;
  }
}

TEST(NdpExecTest, PushdownMatchesPullExactly) {
  SimEnvironment env_off, env_on;
  Database off(&env_off, InstanceProfile::M5ad4xlarge(),
               NdpDbOptions(NdpMode::kOff));
  Database on(&env_on, InstanceProfile::M5ad4xlarge(),
              NdpDbOptions(NdpMode::kOn));
  LoadWide(&off);
  LoadWide(&on);

  // Filter-only range column (k not projected) plus a string column, so
  // the result path re-encodes every column family.
  QueryContext off_ctx(nullptr, nullptr, nullptr);
  QueryContext on_ctx(nullptr, nullptr, nullptr);
  Result<Batch> pulled =
      RangeScan(&off, {"v", "note"}, 1000, 1499, &off_ctx);
  Result<Batch> pushed = RangeScan(&on, {"v", "note"}, 1000, 1499, &on_ctx);
  ASSERT_TRUE(pulled.ok()) << pulled.status().ToString();
  ASSERT_TRUE(pushed.ok()) << pushed.status().ToString();
  EXPECT_EQ(pulled.value().rows(), 500u);
  ExpectSameBatch(pulled.value(), pushed.value());

  // The pushed plan is visible in EXPLAIN (operator name) and telemetry.
  bool saw_ndp_op = false;
  for (const QueryContext::OperatorStats& op : on_ctx.operators()) {
    if (op.name.find("[ndp]") != std::string::npos) saw_ndp_op = true;
  }
  EXPECT_TRUE(saw_ndp_op);
  auto& on_stats = env_on.telemetry().stats();
  EXPECT_GE(on_stats.counter("ndp.pushdown_scans").value(), 1u);
  EXPECT_GT(on_stats.counter("ndp.bytes_scanned").value(), 0u);
  EXPECT_GT(on_stats.counter("ndp.bytes_saved").value(), 0u);
  EXPECT_GT(env_on.cost_meter().s3_selects(), 0u);
  EXPECT_EQ(env_off.cost_meter().s3_selects(), 0u);
  EXPECT_EQ(env_off.telemetry().stats().counter("ndp.pushdown_scans")
                .value(),
            0u);

  // Ledger mirrors the meter for the new request class.
  CostLedger::Entry total = env_on.telemetry().ledger().GrandTotal();
  EXPECT_EQ(total.selects, env_on.cost_meter().s3_selects());
  EXPECT_EQ(total.select_scanned_bytes,
            env_on.cost_meter().select_scanned_bytes());
  EXPECT_EQ(total.select_returned_bytes,
            env_on.cost_meter().select_returned_bytes());
}

TEST(NdpExecTest, AutoModePicksSidesByBytesMoved) {
  SimEnvironment env;
  Database db(&env, InstanceProfile::M5ad4xlarge(),
              NdpDbOptions(NdpMode::kAuto));
  LoadWide(&db);
  auto& stats = env.telemetry().stats();

  // Selective narrow scan: pushdown wins.
  Result<Batch> narrow = RangeScan(&db, {"v"}, 100, 199, nullptr);
  ASSERT_TRUE(narrow.ok());
  EXPECT_EQ(narrow.value().rows(), 100u);
  EXPECT_EQ(stats.counter("ndp.pushdown_scans").value(), 1u);
  EXPECT_EQ(stats.counter("ndp.pull_scans").value(), 0u);

  // Near-full wide scan: the result would be nearly as large as the
  // pages, so auto keeps the pull path.
  Result<Batch> wide =
      RangeScan(&db, {"k", "v", "note"}, 0, 19999, nullptr);
  ASSERT_TRUE(wide.ok());
  EXPECT_EQ(wide.value().rows(), 20000u);
  EXPECT_EQ(stats.counter("ndp.pushdown_scans").value(), 1u);
  EXPECT_EQ(stats.counter("ndp.pull_scans").value(), 1u);
}

TEST(NdpExecTest, EncryptedPagesFallBackToPull) {
  SimEnvironment env;
  Database::Options options = NdpDbOptions(NdpMode::kOn);
  options.encrypt_pages = true;  // the store has no key: not eligible
  Database db(&env, InstanceProfile::M5ad4xlarge(), options);
  LoadWide(&db);
  Result<Batch> result = RangeScan(&db, {"v"}, 100, 199, nullptr);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().rows(), 100u);
  EXPECT_EQ(env.telemetry().stats().counter("ndp.pushdown_scans").value(),
            0u);
  EXPECT_EQ(env.cost_meter().s3_selects(), 0u);
}

TEST(NdpExecTest, MissingEngineFallsBackToPull) {
  // Mode forced on at the query level, but the database never installed
  // an engine (its own mode is off): the planner's SelectSupported check
  // keeps the scan on the pull path instead of erroring.
  SimEnvironment env;
  Database db(&env, InstanceProfile::M5ad4xlarge(),
              NdpDbOptions(NdpMode::kOff));
  LoadWide(&db);
  Transaction* txn = db.Begin();
  QueryContext::Options qopts;
  qopts.ndp_mode = NdpMode::kOn;
  QueryContext ctx(&db.txn_mgr(), txn, db.system(), qopts);
  Result<TableReader> reader = ctx.OpenTable(7);
  ASSERT_TRUE(reader.ok());
  Result<Batch> result =
      ScanTable(&ctx, &reader.value(), {"v"}, ScanRange{"k", 100, 199});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().rows(), 100u);
  EXPECT_EQ(env.cost_meter().s3_selects(), 0u);
  ASSERT_TRUE(db.Commit(txn).ok());
}

}  // namespace
}  // namespace cloudiq
