#include <gtest/gtest.h>

#include <set>

#include "blockmap/blockmap.h"
#include "blockmap/identity.h"
#include "tests/test_util.h"

namespace cloudiq {
namespace {

using testing_util::SingleNodeHarness;

class BlockmapTest : public ::testing::Test {
 protected:
  SingleNodeHarness h_;
};

TEST_F(BlockmapTest, AppendLookupBeforeFlush) {
  Blockmap map(h_.storage.get(), h_.cloud_space, /*fanout=*/4);
  uint64_t p0 = map.Append(PhysicalLoc::ForCloudKey(kCloudKeyBase + 1));
  uint64_t p1 = map.Append(PhysicalLoc::ForCloudKey(kCloudKeyBase + 2));
  EXPECT_EQ(p0, 0u);
  EXPECT_EQ(p1, 1u);
  EXPECT_EQ(map.page_count(), 2u);
  Result<PhysicalLoc> loc = map.Lookup(0);
  ASSERT_TRUE(loc.ok());
  EXPECT_EQ(loc->cloud_key(), kCloudKeyBase + 1);
  EXPECT_FALSE(map.Lookup(5).ok());  // out of range
}

TEST_F(BlockmapTest, GrowsHeightAndStaysCorrect) {
  Blockmap map(h_.storage.get(), h_.cloud_space, /*fanout=*/4);
  // 100 pages with fanout 4 forces height >= 4.
  for (uint64_t i = 0; i < 100; ++i) {
    map.Append(PhysicalLoc::ForCloudKey(kCloudKeyBase + 1000 + i));
  }
  EXPECT_GE(map.height(), 4u);
  for (uint64_t i = 0; i < 100; ++i) {
    Result<PhysicalLoc> loc = map.Lookup(i);
    ASSERT_TRUE(loc.ok());
    EXPECT_EQ(loc->cloud_key(), kCloudKeyBase + 1000 + i) << "page " << i;
  }
}

TEST_F(BlockmapTest, UpdateReturnsOldLocation) {
  Blockmap map(h_.storage.get(), h_.cloud_space, 4);
  map.Append(PhysicalLoc::ForCloudKey(kCloudKeyBase + 7));
  Result<PhysicalLoc> old =
      map.Update(0, PhysicalLoc::ForCloudKey(kCloudKeyBase + 8));
  ASSERT_TRUE(old.ok());
  EXPECT_EQ(old->cloud_key(), kCloudKeyBase + 7);
  EXPECT_EQ(map.Lookup(0)->cloud_key(), kCloudKeyBase + 8);
}

// The Figure 2 walk-through: dirtying a data page versions the leaf, its
// ancestors and finally the root — each under a brand-new location — and
// the superseded node versions are reported for GC.
TEST_F(BlockmapTest, Figure2CowVersioningChain) {
  Blockmap map(h_.storage.get(), h_.cloud_space, /*fanout=*/2);
  // Build a 2-level tree: 4 data pages -> 2 leaves + 1 root (height 2).
  std::vector<uint64_t> data_keys;
  for (uint64_t i = 0; i < 4; ++i) {
    // Data pages are written first (as the buffer manager would).
    Result<PhysicalLoc> loc = h_.storage->WritePage(
        h_.cloud_space, h_.MakePayload(256, static_cast<uint8_t>(i)),
        CloudCache::WriteMode::kWriteThrough, 1);
    ASSERT_TRUE(loc.ok());
    map.Append(*loc);
    data_keys.push_back(loc->cloud_key());
  }
  Result<Blockmap::FlushEffects> first =
      map.Flush(CloudCache::WriteMode::kWriteThrough, 1);
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(first->new_root.valid());
  EXPECT_TRUE(first->freed.empty());  // nothing superseded yet
  PhysicalLoc root_v1 = first->new_root;
  uint64_t nodes_v1 = first->nodes_written;
  EXPECT_GE(nodes_v1, 3u);  // 2 leaves + root

  // Dirty page 3 ("H"): new version H'.
  Result<PhysicalLoc> h_prime = h_.storage->WritePage(
      h_.cloud_space, h_.MakePayload(256, 99),
      CloudCache::WriteMode::kWriteThrough, 1);
  ASSERT_TRUE(h_prime.ok());
  ASSERT_TRUE(map.Update(3, *h_prime).ok());

  Result<Blockmap::FlushEffects> second =
      map.Flush(CloudCache::WriteMode::kWriteThrough, 1);
  ASSERT_TRUE(second.ok());
  // Exactly the leaf owning page 3 (D -> D') and the root (A -> A') are
  // rewritten; the sibling leaf is untouched.
  EXPECT_EQ(second->nodes_written, 2u);
  EXPECT_EQ(second->freed.size(), 2u);
  EXPECT_EQ(second->allocated.size(), 2u);
  EXPECT_FALSE(second->new_root == root_v1);
  // Old root is among the freed versions.
  bool old_root_freed = false;
  for (PhysicalLoc loc : second->freed) {
    if (loc == root_v1) old_root_freed = true;
  }
  EXPECT_TRUE(old_root_freed);
  // Never-write-twice: all new node locations are fresh keys.
  std::set<uint64_t> fresh;
  for (PhysicalLoc loc : second->allocated) {
    EXPECT_TRUE(loc.is_cloud());
    EXPECT_TRUE(fresh.insert(loc.cloud_key()).second);
  }
  EXPECT_EQ(h_.env.object_store().stats().overwrites, 0u);
}

TEST_F(BlockmapTest, ReopenFromRootReadsBack) {
  PhysicalLoc root;
  uint64_t page_count = 0;
  {
    Blockmap map(h_.storage.get(), h_.cloud_space, 4);
    for (uint64_t i = 0; i < 30; ++i) {
      Result<PhysicalLoc> loc = h_.storage->WritePage(
          h_.cloud_space, h_.MakePayload(128, static_cast<uint8_t>(i)),
          CloudCache::WriteMode::kWriteThrough, 1);
      ASSERT_TRUE(loc.ok());
      map.Append(*loc);
    }
    Result<Blockmap::FlushEffects> effects =
        map.Flush(CloudCache::WriteMode::kWriteThrough, 1);
    ASSERT_TRUE(effects.ok());
    root = effects->new_root;
    page_count = map.page_count();
  }

  Blockmap reopened = Blockmap::Open(h_.storage.get(), h_.cloud_space, 4,
                                     root, page_count);
  EXPECT_EQ(reopened.page_count(), 30u);
  for (uint64_t i = 0; i < 30; ++i) {
    Result<PhysicalLoc> loc = reopened.Lookup(i);
    ASSERT_TRUE(loc.ok()) << loc.status().ToString();
    Result<std::vector<uint8_t>> payload =
        h_.storage->ReadPage(h_.cloud_space, *loc);
    ASSERT_TRUE(payload.ok());
    EXPECT_EQ(payload.value(),
              h_.MakePayload(128, static_cast<uint8_t>(i)));
  }
}

TEST_F(BlockmapTest, AppendAfterReopen) {
  PhysicalLoc root;
  uint64_t page_count;
  {
    Blockmap map(h_.storage.get(), h_.cloud_space, 2);
    for (uint64_t i = 0; i < 7; ++i) {
      map.Append(PhysicalLoc::ForCloudKey(kCloudKeyBase + i));
    }
    auto effects = map.Flush(CloudCache::WriteMode::kWriteThrough, 1);
    ASSERT_TRUE(effects.ok());
    root = effects->new_root;
    page_count = map.page_count();
  }
  Blockmap map = Blockmap::Open(h_.storage.get(), h_.cloud_space, 2, root,
                                page_count);
  uint64_t p = map.Append(PhysicalLoc::ForCloudKey(kCloudKeyBase + 100));
  EXPECT_EQ(p, 7u);
  EXPECT_EQ(map.Lookup(7)->cloud_key(), kCloudKeyBase + 100);
  EXPECT_EQ(map.Lookup(3)->cloud_key(), kCloudKeyBase + 3);
}

TEST_F(BlockmapTest, CollectReachableFindsEverything) {
  Blockmap map(h_.storage.get(), h_.cloud_space, 2);
  const uint64_t kPages = 9;
  for (uint64_t i = 0; i < kPages; ++i) {
    Result<PhysicalLoc> loc = h_.storage->WritePage(
        h_.cloud_space, h_.MakePayload(64, static_cast<uint8_t>(i)),
        CloudCache::WriteMode::kWriteThrough, 1);
    ASSERT_TRUE(loc.ok());
    map.Append(*loc);
  }
  auto effects = map.Flush(CloudCache::WriteMode::kWriteThrough, 1);
  ASSERT_TRUE(effects.ok());

  std::vector<PhysicalLoc> nodes, pages;
  ASSERT_TRUE(map.CollectReachable(&nodes, &pages).ok());
  EXPECT_EQ(pages.size(), kPages);
  EXPECT_GE(nodes.size(), 5u);  // fanout-2 tree over 9 leaves
  // Everything reachable must actually exist in the object store.
  for (PhysicalLoc loc : pages) {
    EXPECT_TRUE(
        h_.storage->ReadPage(h_.cloud_space, loc).ok());
  }
}

TEST_F(BlockmapTest, WorksOnBlockDbSpaceToo) {
  Blockmap map(h_.storage.get(), h_.block_space, 8);
  for (uint64_t i = 0; i < 20; ++i) {
    Result<PhysicalLoc> loc = h_.storage->WritePage(
        h_.block_space, h_.MakePayload(512, static_cast<uint8_t>(i)),
        CloudCache::WriteMode::kWriteThrough, 1);
    ASSERT_TRUE(loc.ok());
    map.Append(*loc);
  }
  auto effects = map.Flush(CloudCache::WriteMode::kWriteThrough, 1);
  ASSERT_TRUE(effects.ok());
  EXPECT_FALSE(effects->new_root.is_cloud());
  Blockmap reopened = Blockmap::Open(h_.storage.get(), h_.block_space, 8,
                                     effects->new_root, map.page_count());
  EXPECT_EQ(reopened.Lookup(19)->encoded(), map.Lookup(19)->encoded());
}

TEST(IdentityTest, SerializeRoundTrip) {
  IdentityObject id;
  id.object_id = 42;
  id.dbspace_id = 3;
  id.root = PhysicalLoc::ForCloudKey(kCloudKeyBase + 5);
  id.page_count = 77;
  id.version = 9;
  IdentityObject back = IdentityObject::Deserialize(id.Serialize());
  EXPECT_EQ(back.object_id, 42u);
  EXPECT_EQ(back.dbspace_id, 3u);
  EXPECT_EQ(back.root.cloud_key(), kCloudKeyBase + 5);
  EXPECT_EQ(back.page_count, 77u);
  EXPECT_EQ(back.version, 9u);
}

TEST(IdentityTest, CatalogPersistAndLoad) {
  SingleNodeHarness h;
  IdentityCatalog catalog;
  IdentityObject id;
  id.object_id = 1;
  id.page_count = 10;
  catalog.Put(id);
  id.object_id = 2;
  catalog.Put(id);
  SimTime done = 0;
  ASSERT_TRUE(catalog.Persist(&h.system, "catalog", 0.0, &done).ok());

  Result<IdentityCatalog> loaded =
      IdentityCatalog::Load(&h.system, "catalog", done, &done);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->Contains(1));
  EXPECT_TRUE(loaded->Contains(2));
  EXPECT_FALSE(loaded->Contains(3));
  loaded->Remove(1);
  EXPECT_FALSE(loaded->Contains(1));
}

}  // namespace
}  // namespace cloudiq
