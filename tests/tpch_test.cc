#include <gtest/gtest.h>

#include <cmath>

#include "engine/database.h"
#include "tpch/queries.h"
#include "tpch/tpch_gen.h"
#include "tpch/tpch_loader.h"

namespace cloudiq {
namespace {

constexpr double kTestScale = 0.005;  // ~7.5k orders, 30k lineitems

Database::Options TestDbOptions() {
  Database::Options options;
  options.user_storage = UserStorage::kObjectStore;
  options.page_size = 64 * 1024;
  return options;
}

// Shared fixture: load once for the whole suite (expensive).
class TpchTest : public ::testing::Test {
 protected:
  // The loaded database is shared across every suite derived from this
  // fixture (loading is the expensive part); it is deliberately released
  // only at process exit.
  static void SetUpTestSuite() {
    if (db_ != nullptr) return;
    env_ = new SimEnvironment();
    db_ = new Database(env_, InstanceProfile::M5ad4xlarge(),
                       TestDbOptions());
    gen_ = new TpchGenerator(kTestScale);
    TpchLoadOptions load;
    load.partitions = 4;
    Result<TpchLoadResult> result = LoadTpch(db_, gen_, load);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    load_result_ = *result;
  }

  Result<Batch> Run(int q) {
    Transaction* txn = db_->Begin();
    QueryContext ctx(&db_->txn_mgr(), txn, db_->system());
    Result<Batch> result = RunTpchQuery(&ctx, q);
    EXPECT_TRUE(db_->Commit(txn).ok());
    return result;
  }

  static SimEnvironment* env_;
  static Database* db_;
  static TpchGenerator* gen_;
  static TpchLoadResult load_result_;
};

SimEnvironment* TpchTest::env_ = nullptr;
Database* TpchTest::db_ = nullptr;
TpchGenerator* TpchTest::gen_ = nullptr;
TpchLoadResult TpchTest::load_result_;

TEST(TpchGeneratorTest, DeterministicAcrossBatchBoundaries) {
  TpchGenerator a(0.01), b(0.01);
  Batch whole = a.GenerateBatch(kLineitem, 0, 100);
  Batch part1 = b.GenerateBatch(kLineitem, 0, 37);
  Batch part2 = b.GenerateBatch(kLineitem, 37, 63);
  for (size_t c = 0; c < whole.columns.size(); ++c) {
    if (whole.columns[c].type == ColumnType::kString) {
      for (size_t r = 0; r < 37; ++r) {
        EXPECT_EQ(whole.columns[c].strings[r], part1.columns[c].strings[r]);
      }
      for (size_t r = 37; r < 100; ++r) {
        EXPECT_EQ(whole.columns[c].strings[r],
                  part2.columns[c].strings[r - 37]);
      }
    } else if (whole.columns[c].type != ColumnType::kDouble) {
      for (size_t r = 0; r < 37; ++r) {
        EXPECT_EQ(whole.columns[c].ints[r], part1.columns[c].ints[r]);
      }
    }
  }
}

TEST(TpchGeneratorTest, DomainsRespectSpec) {
  TpchGenerator gen(0.01);
  Batch items = gen.GenerateBatch(kLineitem, 0, 5000);
  for (size_t r = 0; r < items.rows(); ++r) {
    EXPECT_GE(items.Int("l_quantity", r), 1);
    EXPECT_LE(items.Int("l_quantity", r), 50);
    EXPECT_GE(items.Int("l_discount", r), 0);
    EXPECT_LE(items.Int("l_discount", r), 10);
    EXPECT_GE(items.Int("l_tax", r), 0);
    EXPECT_LE(items.Int("l_tax", r), 8);
    EXPECT_GT(items.Int("l_shipdate", r), TpchGenerator::MinOrderDate());
    EXPECT_GT(items.Int("l_receiptdate", r), items.Int("l_shipdate", r));
    EXPECT_GE(items.Int("l_suppkey", r), 1);
    EXPECT_LE(items.Int("l_suppkey", r),
              static_cast<int64_t>(gen.RowCount(kSupplier)));
    const std::string& rf = items.Str("l_returnflag", r);
    EXPECT_TRUE(rf == "R" || rf == "A" || rf == "N");
  }
  Batch orders = gen.GenerateBatch(kOrders, 0, 2000);
  for (size_t r = 0; r < orders.rows(); ++r) {
    EXPECT_NE(orders.Int("o_custkey", r) % 3, 0)
        << "a third of customers place no orders";
    EXPECT_GT(orders.Int("o_totalprice", r), 0);
  }
}

TEST(TpchGeneratorTest, RowCountsScale) {
  TpchGenerator gen(0.01);
  EXPECT_EQ(gen.RowCount(kRegion), 5u);
  EXPECT_EQ(gen.RowCount(kNation), 25u);
  EXPECT_EQ(gen.RowCount(kOrders), 15000u);
  // Variable 1-7 lineitems per order, averaging 4: the total lands near
  // 4x orders.
  EXPECT_NEAR(static_cast<double>(gen.RowCount(kLineitem)),
              4.0 * gen.RowCount(kOrders),
              0.05 * 4.0 * gen.RowCount(kOrders));
  EXPECT_EQ(gen.RowCount(kPartSupp), 4 * gen.RowCount(kPart));
}

TEST(TpchGeneratorTest, VariableLineitemsMapBackToOrders) {
  TpchGenerator gen(0.005);
  // Walk the whole lineitem table; per-order line counts must match
  // LinesPerOrder and linenumbers must be 1..count in sequence.
  Batch items = gen.GenerateBatch(kLineitem, 0, gen.RowCount(kLineitem));
  std::map<int64_t, int64_t> counts;
  int64_t prev_order = 0;
  int64_t prev_line = 0;
  for (size_t r = 0; r < items.rows(); ++r) {
    int64_t order = items.Int("l_orderkey", r);
    int64_t line = items.Int("l_linenumber", r);
    ++counts[order];
    if (order == prev_order) {
      EXPECT_EQ(line, prev_line + 1);
    } else {
      EXPECT_EQ(line, 1);
      EXPECT_EQ(order, prev_order + 1);  // dense, ascending
    }
    prev_order = order;
    prev_line = line;
  }
  std::set<int64_t> distinct_counts;
  for (const auto& [order, n] : counts) {
    EXPECT_EQ(n, TpchGenerator::LinesPerOrder(order)) << order;
    distinct_counts.insert(n);
  }
  EXPECT_GT(distinct_counts.size(), 3u);  // genuinely variable
}

TEST_F(TpchTest, LoadedAllTables) {
  EXPECT_EQ(load_result_.rows,
            gen_->RowCount(kRegion) + gen_->RowCount(kNation) +
                gen_->RowCount(kSupplier) + gen_->RowCount(kCustomer) +
                gen_->RowCount(kPart) + gen_->RowCount(kPartSupp) +
                gen_->RowCount(kOrders) + gen_->RowCount(kLineitem));
  EXPECT_GT(load_result_.seconds, 0.0);
  EXPECT_GT(load_result_.bytes_at_rest, 0u);
  // Columnar encodings + page compression beat the raw text size.
  EXPECT_LT(load_result_.bytes_at_rest, load_result_.input_bytes);
}

TEST_F(TpchTest, Q1MatchesDirectComputation) {
  Result<Batch> result = Run(1);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Compute expected aggregates straight from the generator.
  int64_t cutoff = DaysFromCivil(1998, 12, 1) - 90;
  double expected_sum_qty = 0;
  uint64_t expected_count = 0;
  Batch all = gen_->GenerateBatch(kLineitem, 0, gen_->RowCount(kLineitem));
  for (size_t r = 0; r < all.rows(); ++r) {
    if (all.Int("l_shipdate", r) <= cutoff) {
      expected_sum_qty += all.Int("l_quantity", r);
      ++expected_count;
    }
  }
  double got_qty = 0;
  int64_t got_count = 0;
  for (size_t r = 0; r < result->rows(); ++r) {
    got_qty += result->Int("sum_qty", r);
    got_count += result->Int("count_order", r);
  }
  EXPECT_EQ(got_count, static_cast<int64_t>(expected_count));
  EXPECT_NEAR(got_qty, expected_sum_qty, 1e-6);
  // At most 4 (returnflag, linestatus) combinations survive.
  EXPECT_LE(result->rows(), 4u);
  EXPECT_GE(result->rows(), 3u);
}

TEST_F(TpchTest, Q6MatchesDirectComputation) {
  Result<Batch> result = Run(6);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->rows(), 1u);
  int64_t lo = DaysFromCivil(1994, 1, 1);
  int64_t hi = DaysFromCivil(1995, 1, 1) - 1;
  double expected = 0;
  Batch all = gen_->GenerateBatch(kLineitem, 0, gen_->RowCount(kLineitem));
  for (size_t r = 0; r < all.rows(); ++r) {
    int64_t ship = all.Int("l_shipdate", r);
    int64_t disc = all.Int("l_discount", r);
    if (ship >= lo && ship <= hi && disc >= 5 && disc <= 7 &&
        all.Int("l_quantity", r) < 24) {
      expected +=
          DecimalToDouble(all.Int("l_extendedprice", r)) * (disc / 100.0);
    }
  }
  EXPECT_NEAR(result->Double("revenue", 0), expected,
              std::abs(expected) * 1e-9 + 1e-9);
}

TEST_F(TpchTest, Q3TopTenOrderedByRevenue) {
  Result<Batch> result = Run(3);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_GT(result->rows(), 0u);
  ASSERT_LE(result->rows(), 10u);
  for (size_t r = 1; r < result->rows(); ++r) {
    EXPECT_GE(result->Double("revenue", r - 1),
              result->Double("revenue", r));
  }
}

TEST_F(TpchTest, Q4CountsEachPriority) {
  Result<Batch> result = Run(4);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows(), 5u);  // five priorities, sorted
  EXPECT_EQ(result->Str("o_orderpriority", 0), "1-URGENT");
  for (size_t r = 0; r < result->rows(); ++r) {
    EXPECT_GT(result->Int("order_count", r), 0);
  }
}

TEST_F(TpchTest, Q14MatchesDirectComputation) {
  // Q14 resolves its month predicate through the DATE index; verify the
  // promo fraction against a direct pass over the generated data.
  Result<Batch> result = Run(14);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->rows(), 1u);

  Batch items = gen_->GenerateBatch(kLineitem, 0, gen_->RowCount(kLineitem));
  Batch parts = gen_->GenerateBatch(kPart, 0, gen_->RowCount(kPart));
  std::vector<bool> is_promo(gen_->RowCount(kPart) + 1, false);
  for (size_t r = 0; r < parts.rows(); ++r) {
    is_promo[parts.Int("p_partkey", r)] =
        parts.Str("p_type", r).rfind("PROMO", 0) == 0;
  }
  double promo = 0, total = 0;
  for (size_t r = 0; r < items.rows(); ++r) {
    int y, m, d;
    CivilFromDays(items.Int("l_shipdate", r), &y, &m, &d);
    if (y != 1995 || m != 9) continue;
    double revenue = DecimalToDouble(items.Int("l_extendedprice", r)) *
                     (1.0 - items.Int("l_discount", r) / 100.0);
    total += revenue;
    if (is_promo[items.Int("l_partkey", r)]) promo += revenue;
  }
  double expected_pct = total > 0 ? 100.0 * promo / total : 0.0;
  EXPECT_NEAR(result->Double("promo_pct", 0), expected_pct, 1e-6);
  EXPECT_NEAR(result->Double("total", 0), total, std::abs(total) * 1e-9);
}

TEST_F(TpchTest, Q4MatchesDirectComputation) {
  Result<Batch> result = Run(4);
  ASSERT_TRUE(result.ok());
  // Direct computation: orders in 1993Q3 with >= 1 late line, by priority.
  Batch orders = gen_->GenerateBatch(kOrders, 0, gen_->RowCount(kOrders));
  Batch items = gen_->GenerateBatch(kLineitem, 0, gen_->RowCount(kLineitem));
  std::set<int64_t> late_orders;
  for (size_t r = 0; r < items.rows(); ++r) {
    if (items.Int("l_commitdate", r) < items.Int("l_receiptdate", r)) {
      late_orders.insert(items.Int("l_orderkey", r));
    }
  }
  std::map<std::string, int64_t> expected;
  int64_t lo = DaysFromCivil(1993, 7, 1);
  int64_t hi = DaysFromCivil(1993, 10, 1) - 1;
  for (size_t r = 0; r < orders.rows(); ++r) {
    int64_t d = orders.Int("o_orderdate", r);
    if (d < lo || d > hi) continue;
    if (late_orders.count(orders.Int("o_orderkey", r)) == 0) continue;
    ++expected[orders.Str("o_orderpriority", r)];
  }
  ASSERT_EQ(result->rows(), expected.size());
  for (size_t r = 0; r < result->rows(); ++r) {
    EXPECT_EQ(result->Int("order_count", r),
              expected[result->Str("o_orderpriority", r)])
        << result->Str("o_orderpriority", r);
  }
}

TEST_F(TpchTest, Q12MatchesDirectComputation) {
  Result<Batch> result = Run(12);
  ASSERT_TRUE(result.ok());
  Batch orders = gen_->GenerateBatch(kOrders, 0, gen_->RowCount(kOrders));
  std::vector<bool> high(gen_->RowCount(kOrders) + 1, false);
  for (size_t r = 0; r < orders.rows(); ++r) {
    const std::string& p = orders.Str("o_orderpriority", r);
    high[orders.Int("o_orderkey", r)] = p == "1-URGENT" || p == "2-HIGH";
  }
  Batch items = gen_->GenerateBatch(kLineitem, 0, gen_->RowCount(kLineitem));
  std::map<std::string, std::pair<int64_t, int64_t>> expected;
  int64_t lo = DaysFromCivil(1994, 1, 1);
  int64_t hi = DaysFromCivil(1995, 1, 1) - 1;
  for (size_t r = 0; r < items.rows(); ++r) {
    const std::string& mode = items.Str("l_shipmode", r);
    if (mode != "MAIL" && mode != "SHIP") continue;
    int64_t receipt = items.Int("l_receiptdate", r);
    if (receipt < lo || receipt > hi) continue;
    if (!(items.Int("l_commitdate", r) < receipt &&
          items.Int("l_shipdate", r) < items.Int("l_commitdate", r))) {
      continue;
    }
    auto& counts = expected[mode];
    if (high[items.Int("l_orderkey", r)]) {
      ++counts.first;
    } else {
      ++counts.second;
    }
  }
  ASSERT_EQ(result->rows(), expected.size());
  for (size_t r = 0; r < result->rows(); ++r) {
    const auto& counts = expected[result->Str("l_shipmode", r)];
    EXPECT_EQ(result->Int("high_line_count", r), counts.first);
    EXPECT_EQ(result->Int("low_line_count", r), counts.second);
  }
}

TEST_F(TpchTest, Q13IncludesZeroOrderCustomers) {
  Result<Batch> result = Run(13);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // The histogram must contain a c_count = 0 bucket (a third of
  // customers place no orders).
  bool has_zero = false;
  int64_t zero_bucket = 0;
  for (size_t r = 0; r < result->rows(); ++r) {
    if (result->Int("c_count", r) == 0) {
      has_zero = true;
      zero_bucket = result->Int("custdist", r);
    }
  }
  EXPECT_TRUE(has_zero);
  EXPECT_NEAR(static_cast<double>(zero_bucket),
              gen_->RowCount(kCustomer) / 3.0,
              gen_->RowCount(kCustomer) * 0.1);
}

TEST_F(TpchTest, Q15FindsTheMaxRevenueSupplier) {
  Result<Batch> result = Run(15);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_GE(result->rows(), 1u);
  EXPECT_GE(result->Col("s_name"), 0);
  EXPECT_GT(result->Double("total_revenue", 0), 0.0);

  // Reference: compute the per-supplier 1996Q1 revenue directly and
  // verify the engine surfaced exactly the arg-max supplier(s).
  Batch items = gen_->GenerateBatch(kLineitem, 0, gen_->RowCount(kLineitem));
  std::map<int64_t, double> revenue;
  int64_t lo = DaysFromCivil(1996, 1, 1);
  int64_t hi = DaysFromCivil(1996, 4, 1) - 1;
  for (size_t r = 0; r < items.rows(); ++r) {
    int64_t ship = items.Int("l_shipdate", r);
    if (ship < lo || ship > hi) continue;
    revenue[items.Int("l_suppkey", r)] +=
        DecimalToDouble(items.Int("l_extendedprice", r)) *
        (1.0 - items.Int("l_discount", r) / 100.0);
  }
  double max_revenue = 0;
  for (const auto& [supp, rev] : revenue) {
    max_revenue = std::max(max_revenue, rev);
  }
  for (size_t r = 0; r < result->rows(); ++r) {
    EXPECT_NEAR(result->Double("total_revenue", r), max_revenue,
                max_revenue * 1e-9);
    EXPECT_NEAR(revenue[result->Int("l_suppkey", r)], max_revenue,
                max_revenue * 1e-9);
  }
}

TEST_F(TpchTest, Q17MatchesDirectComputation) {
  Result<Batch> result = Run(17);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->rows(), 1u);

  Batch parts = gen_->GenerateBatch(kPart, 0, gen_->RowCount(kPart));
  std::set<int64_t> target_parts;
  for (size_t r = 0; r < parts.rows(); ++r) {
    if (parts.Str("p_brand", r) == "Brand#23" &&
        parts.Str("p_container", r) == "MED BOX") {
      target_parts.insert(parts.Int("p_partkey", r));
    }
  }
  Batch items = gen_->GenerateBatch(kLineitem, 0, gen_->RowCount(kLineitem));
  std::map<int64_t, std::pair<double, int64_t>> qty;  // sum, count
  for (size_t r = 0; r < items.rows(); ++r) {
    int64_t part = items.Int("l_partkey", r);
    if (target_parts.count(part) == 0) continue;
    qty[part].first += items.Int("l_quantity", r);
    qty[part].second += 1;
  }
  double expected = 0;
  for (size_t r = 0; r < items.rows(); ++r) {
    int64_t part = items.Int("l_partkey", r);
    auto it = qty.find(part);
    if (it == qty.end()) continue;
    double avg = it->second.first / it->second.second;
    if (items.Int("l_quantity", r) < 0.2 * avg) {
      expected += DecimalToDouble(items.Int("l_extendedprice", r));
    }
  }
  EXPECT_NEAR(result->Double("avg_yearly", 0), expected / 7.0,
              std::abs(expected) * 1e-9 + 1e-9);
}

TEST_F(TpchTest, Q18RespectsThresholdAndOrder) {
  Result<Batch> result = Run(18);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_GT(result->rows(), 0u);
  for (size_t r = 1; r < result->rows(); ++r) {
    EXPECT_GE(result->Int("o_totalprice", r - 1),
              result->Int("o_totalprice", r));
  }
}

TEST_F(TpchTest, Q22AntiJoinProducesCountryGroups) {
  Result<Batch> result = Run(22);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_GT(result->rows(), 0u);
  for (size_t r = 0; r < result->rows(); ++r) {
    EXPECT_GT(result->Int("numcust", r), 0);
    EXPECT_GT(result->Double("totacctbal", r), 0.0);
  }
}

// Every query must run clean and cost simulated time.
class TpchAllQueriesTest : public TpchTest,
                           public ::testing::WithParamInterface<int> {};

TEST_P(TpchAllQueriesTest, RunsClean) {
  int q = GetParam();
  SimTime before = db_->node().clock().now();
  Result<Batch> result = Run(q);
  ASSERT_TRUE(result.ok()) << "Q" << q << ": " << result.status().ToString();
  EXPECT_GT(db_->node().clock().now(), before) << "Q" << q;
}

INSTANTIATE_TEST_SUITE_P(AllQueries, TpchAllQueriesTest,
                         ::testing::Range(1, kTpchQueryCount + 1));

// Every query must produce bitwise-identical output under the native
// parallel executor: same rows, same order, same doubles. The morsel
// target is identical in both runs, so chunked double accumulation
// reassociates identically and even floating-point columns match
// exactly.
class TpchParallelEqualityTest : public TpchTest,
                                 public ::testing::WithParamInterface<int> {
 protected:
  Result<Batch> RunNative(int q) {
    QueryContext::Options opts;
    opts.exec_mode = ExecMode::kNative;
    opts.exec_workers = 4;
    Transaction* txn = db_->Begin();
    QueryContext ctx(&db_->txn_mgr(), txn, db_->system(), opts);
    Result<Batch> result = RunTpchQuery(&ctx, q);
    EXPECT_TRUE(db_->Commit(txn).ok());
    return result;
  }
};

TEST_P(TpchParallelEqualityTest, NativeMatchesSerialBitwise) {
  int q = GetParam();
  Result<Batch> serial = Run(q);
  Result<Batch> native = RunNative(q);
  ASSERT_TRUE(serial.ok()) << "Q" << q << ": "
                           << serial.status().ToString();
  ASSERT_TRUE(native.ok()) << "Q" << q << ": "
                           << native.status().ToString();
  ASSERT_EQ(serial->columns.size(), native->columns.size()) << "Q" << q;
  EXPECT_EQ(serial->names, native->names) << "Q" << q;
  ASSERT_EQ(serial->rows(), native->rows()) << "Q" << q;
  for (size_t c = 0; c < serial->columns.size(); ++c) {
    EXPECT_EQ(serial->columns[c].ints, native->columns[c].ints)
        << "Q" << q << " " << serial->names[c];
    EXPECT_EQ(serial->columns[c].doubles, native->columns[c].doubles)
        << "Q" << q << " " << serial->names[c];
    EXPECT_EQ(serial->columns[c].strings, native->columns[c].strings)
        << "Q" << q << " " << serial->names[c];
  }
}

INSTANTIATE_TEST_SUITE_P(AllQueries, TpchParallelEqualityTest,
                         ::testing::Range(1, kTpchQueryCount + 1));

}  // namespace
}  // namespace cloudiq
