#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/sim_clock.h"
#include "telemetry/attribution.h"
#include "telemetry/report.h"
#include "telemetry/stats.h"
#include "telemetry/telemetry.h"
#include "telemetry/tracer.h"

namespace cloudiq {
namespace {

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.mean(), 0);
  EXPECT_EQ(h.Quantile(0.5), 0);
}

// While the sample set is small the histogram keeps raw values, so
// quantiles are *exact*, not bucket midpoints.
TEST(HistogramTest, ExactQuantilesWhileSmall) {
  Histogram h;
  // 100 distinct values, inserted out of order.
  std::vector<double> values;
  for (int i = 1; i <= 100; ++i) values.push_back(i * 0.001);
  std::reverse(values.begin(), values.end());
  for (double v : values) h.Record(v);

  EXPECT_EQ(h.count(), 100u);
  // Nearest rank: rank = ceil(q * n).
  EXPECT_DOUBLE_EQ(h.Quantile(0.50), 0.050);
  EXPECT_DOUBLE_EQ(h.Quantile(0.95), 0.095);
  EXPECT_DOUBLE_EQ(h.Quantile(0.99), 0.099);
  EXPECT_DOUBLE_EQ(h.Quantile(1.00), 0.100);
  EXPECT_DOUBLE_EQ(h.min(), 0.001);
  EXPECT_DOUBLE_EQ(h.max(), 0.100);
  EXPECT_NEAR(h.mean(), 0.0505, 1e-12);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Record(0.042);
  EXPECT_DOUBLE_EQ(h.p50(), 0.042);
  EXPECT_DOUBLE_EQ(h.p99(), 0.042);
  EXPECT_DOUBLE_EQ(h.min(), 0.042);
  EXPECT_DOUBLE_EQ(h.max(), 0.042);
}

// Past kExactSamples the histogram answers from log buckets; every
// quantile must stay within the documented relative-error bound of the
// true (nearest-rank) sample quantile.
TEST(HistogramTest, LogBucketRelativeErrorBound) {
  Histogram h;
  std::vector<double> values;
  // Log-uniform spread over six decades (0.1 us .. 100 s) — the worst
  // case for a fixed-width design and the natural case for a geometric
  // one. Deterministic LCG so the test is stable.
  uint64_t state = 12345;
  for (int i = 0; i < 10000; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    double u = static_cast<double>(state >> 11) / 9007199254740992.0;
    double v = 1e-7 * std::pow(10.0, 9.0 * u);
    values.push_back(v);
    h.Record(v);
  }
  std::sort(values.begin(), values.end());

  double bound = Histogram::MaxRelativeError();
  EXPECT_GT(bound, 0);
  EXPECT_LT(bound, 0.05);  // ~2.47% at growth 1.05
  for (double q : {0.01, 0.10, 0.50, 0.90, 0.95, 0.99, 0.999}) {
    size_t rank = static_cast<size_t>(std::ceil(q * values.size()));
    if (rank == 0) rank = 1;
    double exact = values[rank - 1];
    double approx = h.Quantile(q);
    EXPECT_NEAR(approx, exact, exact * (bound + 1e-9))
        << "q=" << q << " exact=" << exact << " approx=" << approx;
  }
  // And the edges are clamped to observed extremes.
  EXPECT_GE(h.Quantile(0.0), h.min());
  EXPECT_LE(h.Quantile(1.0), h.max());
}

TEST(HistogramTest, MergeSmallStaysExact) {
  Histogram a, b;
  for (int i = 1; i <= 40; ++i) a.Record(i * 0.001);
  for (int i = 41; i <= 80; ++i) b.Record(i * 0.001);
  a.Merge(b);
  EXPECT_EQ(a.count(), 80u);
  EXPECT_DOUBLE_EQ(a.Quantile(0.5), 0.040);  // still exact
  EXPECT_DOUBLE_EQ(a.min(), 0.001);
  EXPECT_DOUBLE_EQ(a.max(), 0.080);
  EXPECT_NEAR(a.sum(), 0.001 * (80 * 81) / 2, 1e-9);
}

TEST(HistogramTest, MergeLargeMatchesCombinedRecording) {
  Histogram a, b, combined;
  uint64_t state = 99;
  for (int i = 0; i < 2000; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    double v = 1e-5 + static_cast<double>(state >> 40) * 1e-9;
    (i % 2 == 0 ? a : b).Record(v);
    combined.Record(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_DOUBLE_EQ(a.min(), combined.min());
  EXPECT_DOUBLE_EQ(a.max(), combined.max());
  // Bucket-level merge is lossless: identical quantiles, not merely
  // close ones.
  for (double q : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(a.Quantile(q), combined.Quantile(q)) << "q=" << q;
  }
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  for (int i = 0; i < 500; ++i) h.Record(0.001 * (i + 1));
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Quantile(0.5), 0);
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

TEST(StatsRegistryTest, StableRefsAndIteration) {
  StatsRegistry registry;
  Counter& c = registry.counter("s3.retries");
  c.Add(3);
  registry.counter("s3.retries").Add();
  EXPECT_EQ(registry.counter("s3.retries").value(), 4u);

  registry.gauge("cache.bytes").Set(1.5e9);
  registry.histogram("s3.get").Record(0.012);

  EXPECT_EQ(registry.counters().size(), 1u);
  EXPECT_EQ(registry.gauges().size(), 1u);
  EXPECT_EQ(registry.histograms().size(), 1u);

  registry.Reset();
  EXPECT_EQ(registry.counter("s3.retries").value(), 0u);
  EXPECT_EQ(registry.gauge("cache.bytes").value(), 0);
  EXPECT_EQ(registry.histogram("s3.get").count(), 0u);
}

// ---------------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------------

TEST(TracerTest, DisabledRecordsNothing) {
  Tracer tracer;
  SimClock clock;
  tracer.CompleteSpan(1, 1, "x", "span", 0.0, 1.0);
  tracer.Instant(1, 1, "x", "evt", 0.5);
  {
    ScopedSpan span(&tracer, &clock, 1, 1, "x", "scoped");
    clock.Advance(1.0);
  }
  EXPECT_TRUE(tracer.events().empty());
}

// Nested scoped spans under the sim clock: the inner span closes first
// (so it is recorded first) and its interval nests inside the outer's.
TEST(TracerTest, ScopedSpanNestingAndOrdering) {
  Tracer tracer;
  tracer.set_enabled(true);
  SimClock clock;
  clock.Advance(10.0);
  {
    ScopedSpan outer(&tracer, &clock, 2, kTrackTxn, "txn", "commit");
    clock.Advance(1.0);
    {
      ScopedSpan inner(&tracer, &clock, 2, kTrackBuffer, "buffer", "flush");
      clock.Advance(2.0);
    }
    clock.Advance(0.5);
  }
  std::vector<TraceEvent> events = tracer.events();
  ASSERT_EQ(events.size(), 2u);
  const TraceEvent& inner = events[0];
  const TraceEvent& outer = events[1];
  EXPECT_EQ(inner.name, "flush");
  EXPECT_EQ(outer.name, "commit");
  EXPECT_EQ(inner.phase, 'X');
  EXPECT_DOUBLE_EQ(outer.ts, 10.0);
  EXPECT_DOUBLE_EQ(outer.dur, 3.5);
  EXPECT_DOUBLE_EQ(inner.ts, 11.0);
  EXPECT_DOUBLE_EQ(inner.dur, 2.0);
  // Interval containment.
  EXPECT_LE(outer.ts, inner.ts);
  EXPECT_GE(outer.ts + outer.dur, inner.ts + inner.dur);
}

TEST(TracerTest, BackwardsSpanClampedToZeroLength) {
  Tracer tracer;
  tracer.set_enabled(true);
  tracer.CompleteSpan(1, 1, "x", "oops", 5.0, 4.0);
  std::vector<TraceEvent> events = tracer.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_DOUBLE_EQ(events[0].ts, 5.0);
  EXPECT_DOUBLE_EQ(events[0].dur, 0.0);
}

// ---------------------------------------------------------------------------
// Chrome trace JSON
// ---------------------------------------------------------------------------

// Minimal JSON validity scanner: verifies the whole string parses as one
// JSON value. Enough to prove chrome://tracing / Perfetto can load it.
class JsonScanner {
 public:
  explicit JsonScanner(const std::string& s) : s_(s) {}

  bool Validate() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  bool Value() {
    if (pos_ >= s_.size()) return false;
    char c = s_[pos_];
    if (c == '{') return Object();
    if (c == '[') return Array();
    if (c == '"') return String();
    if (c == '-' || (c >= '0' && c <= '9')) return Number();
    if (Literal("true") || Literal("false") || Literal("null")) return true;
    return false;
  }
  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') { ++pos_; return true; }
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (Peek() != ':') return false;
      ++pos_;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') { ++pos_; return true; }
    while (true) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      char c = s_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw ctrl
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        char esc = s_[pos_];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= s_.size() || !std::isxdigit(s_[pos_])) return false;
          }
        } else if (std::string("\"\\/bfnrt").find(esc) ==
                   std::string::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }
  bool Number() {
    size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(s_[pos_]) || s_[pos_] == '.' || s_[pos_] == 'e' ||
            s_[pos_] == 'E' || s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool Literal(const char* lit) {
    size_t n = std::strlen(lit);
    if (s_.compare(pos_, n, lit) == 0) { pos_ += n; return true; }
    return false;
  }
  char Peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\n' ||
                                s_[pos_] == '\t' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  const std::string& s_;
  size_t pos_ = 0;
};

TEST(TraceExporterTest, ChromeTraceJsonWellFormed) {
  Tracer tracer;
  tracer.set_enabled(true);
  tracer.SetProcessName(0, "cluster");
  tracer.SetProcessName(1, "node0 (m5d.16xlarge)");
  tracer.SetTrackName(1, kTrackBuffer, "buffer manager");
  // Names that exercise every escape path.
  tracer.CompleteSpan(1, kTrackBuffer, "buffer",
                      "evil \"name\" with \\ and \n and \t and \x01", 0.001,
                      0.002);
  tracer.Instant(0, kTrackObjectStore, "s3", "throttle p/42", 0.0015);
  tracer.CompleteSpan(1, kTrackExec, "exec", "Q1", 0.0, 1.5);

  std::string json = TraceExporter::ToChromeTraceJson(tracer);
  EXPECT_TRUE(JsonScanner(json).Validate()) << json;

  // Structure spot checks: trace_event requires these fields.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  // Q1 span: 1.5 sim seconds -> 1500000 us.
  EXPECT_NE(json.find("\"dur\":1500000"), std::string::npos);
  // The raw control byte must have been \u-escaped.
  EXPECT_EQ(json.find('\x01'), std::string::npos);
}

TEST(TraceExporterTest, EmptyTracerStillValidJson) {
  Tracer tracer;
  std::string json = TraceExporter::ToChromeTraceJson(tracer);
  EXPECT_TRUE(JsonScanner(json).Validate()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
}

TEST(TraceExporterTest, PercentileReportListsInstruments) {
  Telemetry telemetry;
  for (int i = 1; i <= 100; ++i) {
    telemetry.stats().histogram("s3.get").Record(i * 0.001);
  }
  telemetry.stats().counter("s3.retries").Add(7);
  telemetry.stats().counter("zero.counter");  // zero: skipped
  telemetry.stats().gauge("cache.bytes").Set(2.5e9);

  std::string report = TraceExporter::PercentileReport(telemetry.stats());
  EXPECT_NE(report.find("s3.get"), std::string::npos);
  EXPECT_NE(report.find("s3.retries"), std::string::npos);
  EXPECT_NE(report.find("cache.bytes"), std::string::npos);
  EXPECT_EQ(report.find("zero.counter"), std::string::npos);
}

// ---------------------------------------------------------------------------
// CostLedger
// ---------------------------------------------------------------------------

AttributionContext Attr(uint64_t query, int32_t op, uint32_t node,
                        std::string tag = "") {
  AttributionContext attr;
  attr.query_id = query;
  attr.operator_id = op;
  attr.node_id = node;
  attr.tag = std::move(tag);
  return attr;
}

TEST(CostLedgerTest, ScopedAttributionChargesAndRestores) {
  CostLedger ledger;
  ledger.RecordRequest(CostLedger::Request::kGet, 100);  // unattributed
  {
    ScopedAttribution q1(&ledger, Attr(1, -1, 7, "Q1"));
    ledger.RecordRequest(CostLedger::Request::kPut, 4096);
    {
      ScopedAttribution op(&ledger, Attr(1, 0, 7, "scan"));
      ledger.RecordRequest(CostLedger::Request::kGet, 512);
      ledger.RecordRequest(CostLedger::Request::kGet, 512);
    }
    // Back at query level after the nested scope closes.
    EXPECT_EQ(ledger.current().operator_id, -1);
    ledger.RecordRequest(CostLedger::Request::kDelete, 0);
  }
  EXPECT_EQ(ledger.current().query_id, 0u);

  CostLedger::Entry q1 = ledger.QueryTotal(1);
  EXPECT_EQ(q1.gets, 2u);
  EXPECT_EQ(q1.puts, 1u);
  EXPECT_EQ(q1.deletes, 1u);
  EXPECT_EQ(q1.get_bytes, 1024u);
  EXPECT_EQ(q1.put_bytes, 4096u);
  EXPECT_EQ(q1.Requests(), 4u);

  // The operator-level entry is separate from the query-level one.
  auto entries = ledger.entries();
  auto it = entries.find(CostLedger::Key{1, 0, 7});
  ASSERT_NE(it, entries.end());
  EXPECT_EQ(it->second.gets, 2u);
  EXPECT_EQ(it->second.puts, 0u);

  // Unattributed work stays on query 0 and appears only in the grand
  // total.
  EXPECT_EQ(ledger.QueryTotal(0).gets, 1u);
  EXPECT_EQ(ledger.GrandTotal().Requests(), 5u);
}

TEST(CostLedgerTest, RequestPricingMatchesRates) {
  CostLedger ledger;
  LedgerPrices prices;
  prices.put_per_1k = 0.005;
  prices.get_per_1k = 0.0004;
  ledger.set_prices(prices);
  {
    ScopedAttribution q(&ledger, Attr(3, -1, 1, "priced"));
    for (int i = 0; i < 1000; ++i) {
      ledger.RecordRequest(CostLedger::Request::kPut, 1);
    }
    for (int i = 0; i < 500; ++i) {
      ledger.RecordRequest(CostLedger::Request::kDelete, 0);
    }
    for (int i = 0; i < 2000; ++i) {
      ledger.RecordRequest(CostLedger::Request::kGet, 1);
    }
    for (int i = 0; i < 500; ++i) {
      ledger.RecordRequest(CostLedger::Request::kRangedGet, 1);
    }
    for (int i = 0; i < 500; ++i) {
      ledger.RecordRequest(CostLedger::Request::kHead, 0);
    }
  }
  CostLedger::Entry total = ledger.QueryTotal(3);
  // 1500 PUT-class requests at $0.005/1k + 3000 GET-class at $0.0004/1k.
  EXPECT_NEAR(total.RequestUsd(prices), 1.5 * 0.005 + 3.0 * 0.0004, 1e-12);
  EXPECT_DOUBLE_EQ(total.ec2_usd, 0);
  EXPECT_DOUBLE_EQ(total.TotalUsd(prices), total.RequestUsd(prices));
}

TEST(CostLedgerTest, SelectPricingAndFold) {
  CostLedger ledger;
  LedgerPrices prices;  // defaults mirror CloudPrices::s3_select_*
  {
    ScopedAttribution q(&ledger, Attr(4, -1, 1, "ndp"));
    for (int i = 0; i < 1000; ++i) {
      ledger.RecordSelect(/*scanned_bytes=*/1000000,
                          /*returned_bytes=*/50000);
    }
  }
  // Unattributed selects still land in the grand total.
  ledger.RecordSelect(1000000, 50000);

  CostLedger::Entry query = ledger.QueryTotal(4);
  EXPECT_EQ(query.selects, 1000u);
  EXPECT_EQ(query.select_scanned_bytes, uint64_t{1000000} * 1000);
  EXPECT_EQ(query.select_returned_bytes, uint64_t{50000} * 1000);
  EXPECT_EQ(query.Requests(), 1000u);
  // 1k requests at $0.0004/1k + 1 GB scanned at $0.002/GB + 0.05 GB
  // returned at $0.0007/GB.
  EXPECT_NEAR(query.RequestUsd(prices),
              1.0 * 0.0004 + 1.0 * 0.002 + 0.05 * 0.0007, 1e-12);

  CostLedger::Entry total = ledger.GrandTotal();
  EXPECT_EQ(total.selects, 1001u);

  // Fold carries the select dimensions.
  CostLedger::Entry sum;
  sum.Fold(query);
  sum.Fold(query);
  EXPECT_EQ(sum.selects, 2000u);
  EXPECT_EQ(sum.select_scanned_bytes, uint64_t{1000000} * 2000);
  EXPECT_NEAR(sum.RequestUsd(prices), 2 * query.RequestUsd(prices), 1e-12);
}

TEST(CostLedgerTest, ChargeComputeAddsMoneyNotSimTime) {
  CostLedger ledger;
  AttributionContext who = Attr(5, -1, 2, "Q5");
  {
    ScopedAttribution q(&ledger, who);
    ledger.AddSimSeconds(1.25);
  }
  ledger.ChargeCompute(who, /*seconds=*/3600, /*hourly_usd=*/4.225);
  CostLedger::Entry total = ledger.QueryTotal(5);
  EXPECT_DOUBLE_EQ(total.sim_seconds, 1.25);
  EXPECT_NEAR(total.ec2_usd, 4.225, 1e-12);
  EXPECT_NEAR(total.TotalUsd(ledger.prices()), 4.225, 1e-12);
}

TEST(CostLedgerTest, ThrottleRetryAndCacheCounters) {
  CostLedger ledger;
  {
    ScopedAttribution q(&ledger, Attr(9, -1, 1, "Q9"));
    ledger.RecordThrottle(0.25);
    ledger.RecordThrottle(0.75);
    ledger.RecordRetry(/*not_found=*/true);
    ledger.RecordRetry(/*not_found=*/false);
    ledger.RecordOcmHit();
    ledger.RecordOcmHit();
    ledger.RecordOcmMiss();
    ledger.RecordOcmFill();
    ledger.RecordOcmUpload();
    ledger.RecordBufferHit();
    ledger.RecordBufferMiss();
    ledger.RecordBufferFlush(16);
  }
  CostLedger::Entry total = ledger.QueryTotal(9);
  EXPECT_EQ(total.throttle_events, 2u);
  EXPECT_DOUBLE_EQ(total.throttle_stall_seconds, 1.0);
  EXPECT_EQ(total.not_found_retries, 1u);
  EXPECT_EQ(total.transient_retries, 1u);
  EXPECT_EQ(total.ocm_hits, 2u);
  EXPECT_EQ(total.ocm_misses, 1u);
  EXPECT_EQ(total.ocm_fills, 1u);
  EXPECT_EQ(total.ocm_uploads, 1u);
  EXPECT_EQ(total.buffer_hits, 1u);
  EXPECT_EQ(total.buffer_misses, 1u);
  EXPECT_EQ(total.buffer_flush_pages, 16u);
  EXPECT_NEAR(total.OcmHitRate(), 2.0 / 3.0, 1e-12);
}

TEST(CostLedgerTest, QueriesListsIdsWithTags) {
  CostLedger ledger;
  EXPECT_EQ(ledger.NextQueryId(), 1u);
  EXPECT_EQ(ledger.NextQueryId(), 2u);
  EXPECT_EQ(ledger.last_query_id(), 2u);
  {
    ScopedAttribution a(&ledger, Attr(2, -1, 1, "load"));
    ledger.RecordRequest(CostLedger::Request::kPut, 1);
  }
  {
    ScopedAttribution b(&ledger, Attr(1, 3, 1, "Q1"));
    ledger.RecordRequest(CostLedger::Request::kGet, 1);
  }
  auto queries = ledger.Queries();
  ASSERT_EQ(queries.size(), 2u);
  EXPECT_EQ(queries[0].first, 1u);
  EXPECT_EQ(queries[0].second, "Q1");
  EXPECT_EQ(queries[1].first, 2u);
  EXPECT_EQ(queries[1].second, "load");
}

TEST(CostLedgerTest, PrefixHeatmapCapsAtOtherBucket) {
  CostLedger ledger;
  for (size_t i = 0; i < CostLedger::kMaxPrefixes; ++i) {
    ledger.RecordPrefix("p" + std::to_string(i), /*throttled=*/false, 0);
  }
  EXPECT_EQ(ledger.prefixes().size(), CostLedger::kMaxPrefixes);
  ledger.RecordPrefix("one-too-many", /*throttled=*/true, 0.5);
  ledger.RecordPrefix("and-another", /*throttled=*/true, 0.5);
  auto prefixes = ledger.prefixes();
  EXPECT_EQ(prefixes.size(), CostLedger::kMaxPrefixes + 1);
  auto it = prefixes.find(CostLedger::kOtherPrefixes);
  ASSERT_NE(it, prefixes.end());
  EXPECT_EQ(it->second.requests, 2u);
  EXPECT_EQ(it->second.throttle_events, 2u);
  EXPECT_DOUBLE_EQ(it->second.stall_seconds, 1.0);
  // Known prefixes keep aggregating even once the map is full.
  ledger.RecordPrefix("p0", /*throttled=*/false, 0);
  EXPECT_EQ(ledger.prefixes().at("p0").requests, 2u);
}

TEST(CostLedgerTest, ResetClearsEverything) {
  CostLedger ledger;
  {
    ScopedAttribution q(&ledger, Attr(1, -1, 1, "Q1"));
    ledger.RecordRequest(CostLedger::Request::kGet, 1);
    ledger.RecordPrefix("p", false, 0);
  }
  ledger.Reset();
  EXPECT_TRUE(ledger.entries().empty());
  EXPECT_TRUE(ledger.prefixes().empty());
  EXPECT_EQ(ledger.GrandTotal().Requests(), 0u);
}

// ---------------------------------------------------------------------------
// Run report
// ---------------------------------------------------------------------------

TEST(RunReportTest, EmitsExpectedTopLevelKeys) {
  StatsRegistry stats;
  stats.histogram("s3.get.latency").Record(0.012);
  stats.counter("s3.retries").Add(3);
  stats.gauge("ocm.bytes").Set(1e6);

  CostLedger ledger;
  {
    ScopedAttribution q(&ledger, Attr(1, -1, 4, "Q1"));
    ledger.RecordRequest(CostLedger::Request::kGet, 2048);
    ledger.RecordPrefix("ab12", /*throttled=*/true, 0.125);
  }
  ledger.ChargeCompute(Attr(1, -1, 4, "Q1"), 60, 0.704);

  RunReportInfo info;
  info.bench = "unit \"bench\"";  // quote must be escaped
  info.scale_factor = 0.01;
  info.sim_seconds = 123.5;
  info.s3_gets = 1;
  info.request_usd = 4e-7;

  StallProfiler profiler(&ledger, /*tracer=*/nullptr);
  {
    ScopedAttribution q(&ledger, Attr(1, -1, 4, "Q1"));
    profiler.Charge(WaitClass::kNetworkTransfer, 1.0, 1.5);
  }
  std::string json = BuildRunReportJson(info, stats, ledger, profiler);
  for (const char* key :
       {"\"schema_version\"", "\"bench\"", "\"scale_factor\"",
        "\"sim_seconds\"", "\"cost\"", "\"meter\"", "\"ledger\"",
        "\"queries\"", "\"nodes\"", "\"stalls\"", "\"window_nanos\"",
        "\"network_transfer\"", "\"prefixes\"", "\"histograms\"",
        "\"counters\"", "\"gauges\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  EXPECT_NE(json.find("unit \\\"bench\\\""), std::string::npos);
  EXPECT_NE(json.find("\"tag\":\"Q1\""), std::string::npos);
  EXPECT_NE(json.find("\"ab12\""), std::string::npos);
  EXPECT_NE(json.find("s3.get.latency"), std::string::npos);

  // No stray separators (the field emitters share comma placement).
  EXPECT_EQ(json.find(",,"), std::string::npos);
  EXPECT_EQ(json.find("{,"), std::string::npos);
  EXPECT_EQ(json.find("[,"), std::string::npos);

  // Structurally sound: quotes aside, braces and brackets balance.
  int braces = 0;
  int brackets = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    char c = json[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_FALSE(in_string);
}

TEST(RunReportTest, WritesFileToDisk) {
  StatsRegistry stats;
  CostLedger ledger;
  StallProfiler profiler(&ledger, /*tracer=*/nullptr);
  RunReportInfo info;
  info.bench = "write-test";
  std::string path = ::testing::TempDir() + "cloudiq_report_test.json";
  ASSERT_TRUE(WriteRunReport(info, stats, ledger, profiler, path).ok());
  FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char buf[16] = {0};
  size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  std::remove(path.c_str());
  ASSERT_GT(n, 0u);
  EXPECT_EQ(buf[0], '{');
}

}  // namespace
}  // namespace cloudiq
