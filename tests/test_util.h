#ifndef CLOUDIQ_TESTS_TEST_UTIL_H_
#define CLOUDIQ_TESTS_TEST_UTIL_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "keygen/object_key_generator.h"
#include "sim/environment.h"
#include "store/storage.h"
#include "store/system_store.h"

namespace cloudiq {
namespace testing_util {

// A single-node simulated deployment used across test suites: one compute
// node, the shared object store, an EBS-like system volume with a
// SystemStore, a cloud dbspace and a conventional dbspace, and a local
// ObjectKeyGenerator wired as the key source.
struct SingleNodeHarness {
  explicit SingleNodeHarness(uint64_t page_size = 4096,
                             ObjectStoreOptions store_options = {},
                             StorageSubsystem::Options storage_options = {})
      : env(store_options),
        node(&env.AddNode(InstanceProfile::M5ad4xlarge())),
        system_volume(&env.CreateVolume(
            "system", BlockVolumeOptions::EbsGp2(/*size_gb=*/100))),
        user_volume(&env.CreateVolume(
            "user-ebs", BlockVolumeOptions::EbsGp2(/*size_gb=*/1024))),
        system(system_volume) {
    storage = std::make_unique<StorageSubsystem>(node, &env.object_store(),
                                                 storage_options);
    cloud_space = storage->CreateCloudDbSpace("cloud", page_size);
    block_space =
        storage->CreateBlockDbSpace("blocks", user_volume, page_size);
    key_cache = std::make_unique<NodeKeyCache>(
        [this](uint64_t size, double) {
          return keygen.AllocateRange(/*node=*/0, size);
        });
    storage->set_key_source(
        [this](double now) { return key_cache->NextKey(now); });
  }

  std::vector<uint8_t> MakePayload(size_t size, uint8_t seed) {
    std::vector<uint8_t> payload(size);
    for (size_t i = 0; i < size; ++i) {
      payload[i] = static_cast<uint8_t>(seed + i * 7);
    }
    return payload;
  }

  SimEnvironment env;
  NodeContext* node;
  SimBlockVolume* system_volume;
  SimBlockVolume* user_volume;
  SystemStore system;
  std::unique_ptr<StorageSubsystem> storage;
  DbSpace* cloud_space = nullptr;
  DbSpace* block_space = nullptr;
  ObjectKeyGenerator keygen;
  std::unique_ptr<NodeKeyCache> key_cache;
};

}  // namespace testing_util
}  // namespace cloudiq

#endif  // CLOUDIQ_TESTS_TEST_UTIL_H_
