#include <gtest/gtest.h>

#include "sim/block_volume.h"
#include "sim/environment.h"
#include "sim/instance_profile.h"
#include "sim/io_scheduler.h"
#include "sim/local_ssd.h"
#include "sim/nic.h"
#include "sim/object_store.h"
#include "sim/sim_clock.h"
#include "sim/sim_executor.h"

namespace cloudiq {
namespace {

std::vector<uint8_t> Bytes(size_t n, uint8_t v = 0xab) {
  return std::vector<uint8_t>(n, v);
}

TEST(SimClockTest, AdvanceMonotonic) {
  SimClock clock;
  EXPECT_EQ(clock.now(), 0.0);
  clock.Advance(1.5);
  EXPECT_DOUBLE_EQ(clock.now(), 1.5);
  clock.AdvanceTo(1.0);  // no-op: never backwards
  EXPECT_DOUBLE_EQ(clock.now(), 1.5);
  clock.AdvanceTo(2.0);
  EXPECT_DOUBLE_EQ(clock.now(), 2.0);
}

// Regression: Advance(-x) used to rely on an assert that compiles out
// under NDEBUG, letting release builds move the clock backwards. Negative
// advances are now clamped to no-ops in every build.
TEST(SimClockTest, NegativeAdvanceClamped) {
  SimClock clock;
  clock.Advance(3.0);
  clock.Advance(-1.0);
  EXPECT_DOUBLE_EQ(clock.now(), 3.0);
  clock.Advance(0.0);
  EXPECT_DOUBLE_EQ(clock.now(), 3.0);
  clock.Advance(0.5);
  EXPECT_DOUBLE_EQ(clock.now(), 3.5);
}

TEST(ChannelQueueTest, ParallelChannelsOverlap) {
  ChannelQueue q(2);
  // Two requests arriving together on two channels complete in parallel.
  SimTime a = q.Submit(0.0, /*occupancy=*/1.0, /*extra=*/0.0);
  SimTime b = q.Submit(0.0, 1.0, 0.0);
  EXPECT_DOUBLE_EQ(a, 1.0);
  EXPECT_DOUBLE_EQ(b, 1.0);
  // A third queues behind the earliest-free channel.
  SimTime c = q.Submit(0.0, 1.0, 0.0);
  EXPECT_DOUBLE_EQ(c, 2.0);
}

TEST(RatePacerTest, EnforcesRate) {
  RatePacer pacer(10.0);  // 10/sec -> 0.1 s spacing
  EXPECT_DOUBLE_EQ(pacer.Admit(0.0), 0.0);
  EXPECT_DOUBLE_EQ(pacer.Admit(0.0), 0.1);
  EXPECT_DOUBLE_EQ(pacer.Admit(0.05), 0.2);
  EXPECT_DOUBLE_EQ(pacer.Admit(5.0), 5.0);  // idle resets naturally
}

TEST(ObjectStoreTest, PutThenGetAfterVisibility) {
  ObjectStoreOptions opts;
  opts.lag_probability = 1.0;  // always lag
  opts.mean_visibility_lag = 0.1;
  SimObjectStore store(opts);
  SimTime done = 0;
  ASSERT_TRUE(store.Put("p/x", Bytes(100), 0.0, &done).ok());

  // Immediately after the PUT completes the object may be invisible.
  SimTime get_done = 0;
  Result<std::vector<uint8_t>> miss = store.Get("p/x", done, &get_done);
  // With lag_probability=1 the first read always races.
  ASSERT_FALSE(miss.ok());
  EXPECT_TRUE(miss.status().IsNotFound());
  EXPECT_EQ(store.stats().not_found_races, 1u);

  // Far enough in the future it must be visible.
  Result<std::vector<uint8_t>> hit = store.Get("p/x", done + 100.0,
                                               &get_done);
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(hit.value().size(), 100u);
}

TEST(ObjectStoreTest, OverwriteServesStaleThenFresh) {
  ObjectStoreOptions opts;
  opts.lag_probability = 1.0;
  opts.mean_visibility_lag = 0.5;
  SimObjectStore store(opts);
  SimTime done = 0;
  ASSERT_TRUE(store.Put("p/k", Bytes(10, 1), 0.0, &done).ok());
  SimTime second_put_done = 0;
  ASSERT_TRUE(
      store.Put("p/k", Bytes(10, 2), done + 100.0, &second_put_done).ok());
  EXPECT_EQ(store.stats().overwrites, 1u);

  // Read right after the second PUT: stale version served (scenario 2).
  SimTime get_done = 0;
  Result<std::vector<uint8_t>> stale =
      store.Get("p/k", second_put_done, &get_done);
  ASSERT_TRUE(stale.ok());
  EXPECT_EQ(stale.value()[0], 1);
  EXPECT_GE(store.stats().stale_reads, 1u);

  // Much later the fresh version wins.
  Result<std::vector<uint8_t>> fresh =
      store.Get("p/k", second_put_done + 1000.0, &get_done);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh.value()[0], 2);
}

TEST(ObjectStoreTest, DeleteEventuallyHides) {
  ObjectStoreOptions opts;
  opts.lag_probability = 0.0;  // immediate visibility for simplicity
  SimObjectStore store(opts);
  SimTime done = 0;
  ASSERT_TRUE(store.Put("p/d", Bytes(10), 0.0, &done).ok());
  EXPECT_EQ(store.LiveObjectCount(), 1u);
  SimTime del_done = 0;
  ASSERT_TRUE(store.Delete("p/d", done + 1.0, &del_done).ok());
  EXPECT_EQ(store.LiveObjectCount(), 0u);
  SimTime get_done = 0;
  EXPECT_TRUE(
      store.Get("p/d", del_done + 100.0, &get_done).status().IsNotFound());
  EXPECT_FALSE(store.Exists("p/d", del_done + 100.0, &get_done));
}

TEST(ObjectStoreTest, NeverWriteTwiceTripwireRejectsSecondPut) {
  // The dynamic assertion in Put: with the flag on, a second PUT to the
  // same key fails — even after the key was deleted, since a reused key
  // would resurrect the §3 stale-read scenarios.
  ObjectStoreOptions opts;
  opts.enforce_never_write_twice = true;
  SimObjectStore store(opts);
  SimTime done = 0;
  ASSERT_TRUE(store.Put("obj/1", Bytes(3), 0.0, &done).ok());
  Status again = store.Put("obj/1", Bytes(6), done + 1, &done);
  EXPECT_TRUE(again.IsAlreadyExists()) << again.ToString();
  ASSERT_TRUE(store.Delete("obj/1", done + 2, &done).ok());
  Status after_delete = store.Put("obj/1", Bytes(1), done + 3, &done);
  EXPECT_TRUE(after_delete.IsAlreadyExists()) << after_delete.ToString();
  // A fresh key is of course fine.
  EXPECT_TRUE(store.Put("obj/2", Bytes(8), done + 4, &done).ok());
}

TEST(ObjectStoreTest, PerPrefixThrottlingDelaysSharedPrefix) {
  ObjectStoreOptions opts;
  opts.lag_probability = 0.0;
  opts.per_prefix_put_rate = 100;  // low to make throttling visible
  SimObjectStore shared_prefix(opts);
  SimObjectStore hashed(opts);

  // 200 PUTs under ONE prefix vs 200 under distinct prefixes.
  SimTime shared_last = 0, hashed_last = 0;
  for (int i = 0; i < 200; ++i) {
    SimTime done = 0;
    ASSERT_TRUE(shared_prefix
                    .Put("data/" + std::to_string(i), Bytes(10), 0.0, &done)
                    .ok());
    shared_last = std::max(shared_last, done);
    ASSERT_TRUE(hashed
                    .Put("pfx" + std::to_string(i) + "/k", Bytes(10), 0.0,
                         &done)
                    .ok());
    hashed_last = std::max(hashed_last, done);
  }
  // 200 requests at 100/s under one prefix take ~2 s; hashed prefixes
  // avoid the pacer entirely.
  EXPECT_GT(shared_last, 1.5);
  EXPECT_LT(hashed_last, 0.5);
  EXPECT_GT(shared_prefix.stats().throttle_events, 0u);
  EXPECT_EQ(hashed.stats().throttle_events, 0u);
}

TEST(ObjectStoreTest, LiveAccounting) {
  ObjectStoreOptions opts;
  opts.lag_probability = 0.0;
  SimObjectStore store(opts);
  SimTime done = 0;
  ASSERT_TRUE(store.Put("a/1", Bytes(100), 0.0, &done).ok());
  ASSERT_TRUE(store.Put("a/2", Bytes(200), 0.0, &done).ok());
  EXPECT_EQ(store.LiveObjectCount(), 2u);
  EXPECT_EQ(store.LiveBytes(), 300u);
  EXPECT_EQ(store.LiveKeys(), (std::vector<std::string>{"a/1", "a/2"}));
}

TEST(ObjectStoreTest, ExternalReadBillsAndPaces) {
  SimEnvironment env;
  // 100 MB streamed: billed as 8 MB ranged GETs, transferred over the
  // store's parallel streams.
  SimTime done = env.object_store().ExternalRead(100 << 20, 0.0);
  EXPECT_GT(done, 0.0);
  EXPECT_EQ(env.cost_meter().s3_ranged_gets(), (100 + 7) / 8);
  EXPECT_EQ(env.cost_meter().s3_gets(), 0u);
  EXPECT_EQ(env.object_store().stats().ranged_gets, (100u + 7) / 8);
  // With thousands of streams the parts run in parallel: ~one part's
  // transfer time, not thirteen.
  EXPECT_LT(done, 0.5);
}

TEST(NicTest, TraceResolutionConfigurable) {
  Nic nic(/*gbps=*/8.0);
  nic.set_trace_resolution(0.1);
  nic.Transfer(100'000'000, 0.0);  // 0.1 s at 1 GB/s
  ASSERT_GE(nic.trace().size(), 1u);
  EXPECT_NEAR(nic.trace()[0] / nic.trace_resolution(), 1e9, 5e7);
}

TEST(ObjectStoreTest, CostMeterBillsRequests) {
  SimEnvironment env;
  SimTime done = 0;
  ASSERT_TRUE(env.object_store().Put("a/b", Bytes(10), 0.0, &done).ok());
  (void)env.object_store().Get("a/b", done + 10, &done);  // billing only
  EXPECT_EQ(env.cost_meter().s3_puts(), 1u);
  EXPECT_EQ(env.cost_meter().s3_gets(), 1u);
  EXPECT_GT(env.cost_meter().S3RequestUsd(), 0.0);

  // DELETE and HEAD are billed too (DELETE at the PUT rate).
  double before_usd = env.cost_meter().S3RequestUsd();
  (void)env.object_store().Exists("a/b", done + 10, &done);
  ASSERT_TRUE(env.object_store().Delete("a/b", done + 10, &done).ok());
  EXPECT_EQ(env.cost_meter().s3_deletes(), 1u);
  EXPECT_EQ(env.cost_meter().S3Requests(), 4u);
  EXPECT_GT(env.cost_meter().S3RequestUsd(), before_usd);

  // Every metered request was also attributed (to the default context
  // here), so the cluster ledger agrees with the meter request-for-
  // request and dollar-for-dollar.
  CostLedger::Entry grand = env.telemetry().ledger().GrandTotal();
  EXPECT_EQ(grand.Requests(), env.cost_meter().S3Requests());
  EXPECT_NEAR(grand.RequestUsd(env.telemetry().ledger().prices()),
              env.cost_meter().S3RequestUsd(), 1e-12);
}

TEST(BlockVolumeTest, StrongConsistencyReadAfterWrite) {
  SimBlockVolume vol(BlockVolumeOptions::EbsGp2(1024));
  SimTime done = 0;
  ASSERT_TRUE(vol.Write(10, Bytes(4096, 3), 0.0, &done).ok());
  SimTime read_done = 0;
  Result<std::vector<uint8_t>> r = vol.Read(10, done, &read_done);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value()[0], 3);
  EXPECT_TRUE(vol.Read(11, done, &read_done).status().IsNotFound());
}

TEST(BlockVolumeTest, IopsCapThrottles) {
  // 100 GB gp2 sustains 3,000 IOPS inside the burst envelope.
  BlockVolumeOptions opts = BlockVolumeOptions::EbsGp2(100);
  SimBlockVolume vol(opts);
  SimTime last = 0;
  for (int i = 0; i < 6000; ++i) {
    SimTime done = 0;
    ASSERT_TRUE(vol.Write(i, Bytes(512), 0.0, &done).ok());
    last = std::max(last, done);
  }
  // 6,000 ops at 3,000 IOPS >= ~2 seconds.
  EXPECT_GT(last, 1.8);
  EXPECT_LT(last, 3.0);
}

TEST(BlockVolumeTest, EfsSlowerThanEbs) {
  SimBlockVolume ebs(BlockVolumeOptions::EbsGp2(1024));
  SimBlockVolume efs(BlockVolumeOptions::EfsStandard(500));
  SimTime ebs_done = 0, efs_done = 0;
  for (int i = 0; i < 100; ++i) {
    SimTime d = 0;
    ASSERT_TRUE(ebs.Write(i, Bytes(1 << 20), 0.0, &d).ok());
    ebs_done = std::max(ebs_done, d);
    ASSERT_TRUE(efs.Write(i, Bytes(1 << 20), 0.0, &d).ok());
    efs_done = std::max(efs_done, d);
  }
  EXPECT_GT(efs_done, ebs_done);
}

TEST(BlockVolumeTest, FreeReleasesSpace) {
  SimBlockVolume vol(BlockVolumeOptions::EbsGp2(1024));
  SimTime done = 0;
  ASSERT_TRUE(vol.Write(5, Bytes(1000), 0.0, &done).ok());
  EXPECT_EQ(vol.StoredBytes(), 1000u);
  ASSERT_TRUE(vol.Free(5, done, &done).ok());
  EXPECT_EQ(vol.StoredBytes(), 0u);
}

TEST(LocalSsdTest, ReadLatencyInflatesUnderWriteFlood) {
  LocalSsdOptions opts;
  SimLocalSsd ssd(opts);
  SimTime done = 0;
  ASSERT_TRUE(ssd.Write("k", Bytes(4096), 0.0, &done).ok());

  // Quiet device: read is fast.
  SimTime quiet_done = 0;
  ASSERT_TRUE(ssd.Read("k", done + 1.0, &quiet_done).ok());
  double quiet_latency = quiet_done - (done + 1.0);

  // Flood the device with large writes, then read: the read queues
  // behind the backlog (the Figure 6 brown-out mechanism).
  SimTime flood_start = quiet_done + 1.0;
  for (int i = 0; i < 200; ++i) {
    SimTime d = 0;
    ASSERT_TRUE(
        ssd.Write("w" + std::to_string(i), Bytes(4 << 20), flood_start, &d)
            .ok());
  }
  SimTime busy_done = 0;
  ASSERT_TRUE(ssd.Read("k", flood_start, &busy_done).ok());
  double busy_latency = busy_done - flood_start;
  EXPECT_GT(busy_latency, 10 * quiet_latency);
  EXPECT_GT(ssd.BacklogSeconds(flood_start), 0.0);
}

TEST(LocalSsdTest, EraseAndAccounting) {
  SimLocalSsd ssd;
  SimTime done = 0;
  ASSERT_TRUE(ssd.Write("a", Bytes(100), 0.0, &done).ok());
  EXPECT_TRUE(ssd.Contains("a"));
  EXPECT_EQ(ssd.StoredBytes(), 100u);
  ssd.Erase("a");
  EXPECT_FALSE(ssd.Contains("a"));
  EXPECT_EQ(ssd.StoredBytes(), 0u);
  EXPECT_TRUE(ssd.Read("a", done, &done).status().IsNotFound());
}

TEST(NicTest, BandwidthCapAndTrace) {
  Nic nic(/*gbps=*/8.0);  // 1 GB/s
  // 2 GB transferred back to back takes ~2 seconds.
  SimTime t1 = nic.Transfer(1'000'000'000, 0.0);
  SimTime t2 = nic.Transfer(1'000'000'000, 0.0);
  EXPECT_NEAR(t1, 1.0, 0.01);
  EXPECT_NEAR(t2, 2.0, 0.01);
  ASSERT_GE(nic.trace().size(), 2u);
  // Each 1-second bucket carried ~1 GB.
  EXPECT_NEAR(nic.trace()[0], 1e9, 5e7);
  EXPECT_NEAR(nic.trace()[1], 1e9, 5e7);
  EXPECT_EQ(nic.total_bytes(), 2'000'000'000u);
}

TEST(SimExecutorTest, RunsDueTasksInOrder) {
  SimExecutor exec;
  std::vector<int> order;
  exec.Schedule(2.0, [&](SimTime) { order.push_back(2); });
  exec.Schedule(1.0, [&](SimTime) { order.push_back(1); });
  exec.Schedule(3.0, [&](SimTime) { order.push_back(3); });
  exec.RunDue(2.5);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(exec.pending(), 1u);
  exec.Drain();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimExecutorTest, TasksCanScheduleTasks) {
  SimExecutor exec;
  int count = 0;
  exec.Schedule(1.0, [&](SimTime t) {
    ++count;
    exec.Schedule(t + 0.5, [&](SimTime) { ++count; });
  });
  exec.RunDue(2.0);
  EXPECT_EQ(count, 2);
}

TEST(IoSchedulerTest, ParallelWidthBoundsElapsed) {
  SimClock clock;
  SimExecutor exec;
  IoScheduler io(&clock, &exec);
  // 8 ops of 1 s each with width 4 -> 2 s elapsed.
  std::vector<IoScheduler::Op> ops;
  for (int i = 0; i < 8; ++i) {
    ops.push_back([](SimTime start) { return start + 1.0; });
  }
  io.RunParallel(ops, 4);
  EXPECT_NEAR(clock.now(), 2.0, 1e-9);
}

TEST(IoSchedulerTest, CpuWorkDividedByParallelism) {
  SimClock clock;
  SimExecutor exec;
  IoScheduler io(&clock, &exec);
  io.AddCpuWork(16.0, 8);
  EXPECT_NEAR(clock.now(), 2.0, 1e-9);
}

TEST(InstanceProfileTest, CatalogShapes) {
  EXPECT_EQ(InstanceProfile::M5ad4xlarge().vcpus, 16);
  EXPECT_EQ(InstanceProfile::M5ad12xlarge().vcpus, 48);
  EXPECT_EQ(InstanceProfile::M5ad24xlarge().vcpus, 96);
  EXPECT_LT(InstanceProfile::R5Large().hourly_usd,
            InstanceProfile::M5ad4xlarge().hourly_usd);
}

TEST(NodeContextTest, IoWidthCapped) {
  SimEnvironment env;
  NodeContext& big = env.AddNode(InstanceProfile::M5ad24xlarge());
  NodeContext& small = env.AddNode(InstanceProfile::M5ad4xlarge());
  // The 96-vCPU instance is capped at the engine's intrinsic 80-stream
  // pipeline limit (the paper's ~9 Gb/s NIC plateau); smaller instances
  // scale with vCPUs.
  EXPECT_EQ(big.IoWidth(), 80);
  EXPECT_EQ(small.IoWidth(), 32);
}

TEST(CostMeterTest, MonthlyStorageRelativeCosts) {
  CostMeter meter;
  // The paper's Table 4 ordering: S3 ~4x cheaper than EBS, ~13x than EFS.
  double gb = 518;
  EXPECT_NEAR(meter.EbsMonthlyUsd(gb), 51.80, 0.01);
  EXPECT_NEAR(meter.EfsMonthlyUsd(gb), 155.40, 0.01);
  EXPECT_LT(meter.S3MonthlyUsd(gb), meter.EbsMonthlyUsd(gb) / 4);
}

}  // namespace
}  // namespace cloudiq
