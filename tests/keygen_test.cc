#include <gtest/gtest.h>

#include <set>

#include "keygen/object_key_generator.h"

namespace cloudiq {
namespace {

TEST(ObjectKeyGeneratorTest, KeysInReservedRange) {
  ObjectKeyGenerator gen;
  KeyRange r = gen.AllocateRange(1, 100);
  EXPECT_GE(r.begin, uint64_t{1} << 63);
  EXPECT_EQ(r.size(), 100u);
}

TEST(ObjectKeyGeneratorTest, StrictMonotonicityAcrossNodes) {
  ObjectKeyGenerator gen;
  uint64_t last_end = 0;
  for (NodeId node = 0; node < 5; ++node) {
    for (int i = 0; i < 10; ++i) {
      KeyRange r = gen.AllocateRange(node, 64);
      EXPECT_GE(r.begin, last_end);
      last_end = r.end;
    }
  }
  EXPECT_EQ(gen.max_allocated(), last_end);
}

TEST(ObjectKeyGeneratorTest, RangeSizeClamped) {
  ObjectKeyGenerator::Options opts;
  opts.min_range_size = 32;
  opts.max_range_size = 128;
  ObjectKeyGenerator gen(opts);
  EXPECT_EQ(gen.AllocateRange(1, 1).size(), 32u);
  EXPECT_EQ(gen.AllocateRange(1, 1 << 20).size(), 128u);
}

TEST(ObjectKeyGeneratorTest, ActiveSetTracksAllocationAndCommit) {
  ObjectKeyGenerator gen;
  KeyRange r = gen.AllocateRange(1, 100);
  EXPECT_EQ(gen.ActiveSet(1).Count(), 100u);

  // A transaction consumed the first 30 keys and committed.
  IntervalSet committed;
  committed.InsertRange(r.begin, r.begin + 30);
  gen.OnTransactionCommitted(1, committed);
  EXPECT_EQ(gen.ActiveSet(1).Count(), 70u);
  EXPECT_FALSE(gen.ActiveSet(1).Contains(r.begin));
  EXPECT_TRUE(gen.ActiveSet(1).Contains(r.begin + 30));
}

TEST(ObjectKeyGeneratorTest, TakeActiveSetForRecoveryClears) {
  ObjectKeyGenerator gen;
  KeyRange r = gen.AllocateRange(2, 50);
  IntervalSet taken = gen.TakeActiveSetForRecovery(2);
  EXPECT_EQ(taken.Count(), 50u);
  EXPECT_TRUE(taken.Contains(r.begin));
  EXPECT_TRUE(gen.ActiveSet(2).empty());
}

// The Table 1 walk-through: checkpoint at clock 50, allocation at 60,
// commits, coordinator crash at 110 and recovery at 120.
TEST(ObjectKeyGeneratorTest, Table1CoordinatorCrashRecovery) {
  ObjectKeyGenerator::Options opts;
  opts.min_range_size = 16;
  ObjectKeyGenerator gen(opts);

  // Clock 50: checkpoint (empty active set).
  std::vector<uint8_t> checkpoint = gen.Checkpoint();

  // Clock 60: range 101-200 (here: base..base+100) allocated to W1.
  KeyRange r = gen.AllocateRange(/*node=*/1, 100);

  // Clock 70-90: T1 uses keys [begin, begin+30) and commits.
  IntervalSet t1;
  t1.InsertRange(r.begin, r.begin + 30);
  gen.OnTransactionCommitted(1, t1);

  // Clock 80: T2 uses keys [begin+30, begin+50) — never commits (rolls
  // back at clock 130; the coordinator is deliberately not told).

  // The log accumulated since the checkpoint:
  std::vector<KeygenLogRecord> log = gen.pending_log();
  ASSERT_EQ(log.size(), 2u);

  // Clock 110-120: coordinator crashes and recovers from checkpoint+log.
  ObjectKeyGenerator recovered =
      ObjectKeyGenerator::Recover(checkpoint, log, opts);

  // Active set is exactly {begin+30 .. end}: committed range gone,
  // rolled-back and unconsumed keys still tracked.
  EXPECT_EQ(recovered.ActiveSet(1).Count(), 70u);
  EXPECT_FALSE(recovered.ActiveSet(1).Contains(r.begin + 29));
  EXPECT_TRUE(recovered.ActiveSet(1).Contains(r.begin + 30));
  EXPECT_TRUE(recovered.ActiveSet(1).Contains(r.end - 1));

  // Monotonicity preserved: the next allocation starts past the old max.
  KeyRange next = recovered.AllocateRange(1, 16);
  EXPECT_GE(next.begin, r.end);

  // Clock 140-150: W1 crashes and restarts; its entire active set is
  // polled for GC — including the rolled-back range {131-150}, which is
  // re-polled (idempotent) because rollback GC was not communicated.
  IntervalSet to_poll = recovered.TakeActiveSetForRecovery(1);
  EXPECT_TRUE(to_poll.Contains(r.begin + 35));  // rolled-back T2 key
  EXPECT_TRUE(to_poll.Contains(r.end - 1));     // unconsumed tail
  EXPECT_FALSE(to_poll.Contains(r.begin));      // committed T1 key
}

TEST(ObjectKeyGeneratorTest, CheckpointClearsPendingLog) {
  ObjectKeyGenerator gen;
  gen.AllocateRange(1, 32);
  EXPECT_EQ(gen.pending_log().size(), 1u);
  gen.Checkpoint();
  EXPECT_TRUE(gen.pending_log().empty());
}

TEST(ObjectKeyGeneratorTest, RecoverFromCheckpointWithActiveSets) {
  ObjectKeyGenerator gen;
  KeyRange r1 = gen.AllocateRange(1, 64);
  gen.AllocateRange(2, 64);
  std::vector<uint8_t> checkpoint = gen.Checkpoint();

  ObjectKeyGenerator recovered = ObjectKeyGenerator::Recover(checkpoint, {});
  EXPECT_EQ(recovered.ActiveSet(1).Count(), 64u);
  EXPECT_EQ(recovered.ActiveSet(2).Count(), 64u);
  EXPECT_EQ(recovered.max_allocated(), gen.max_allocated());
  EXPECT_TRUE(recovered.ActiveSet(1).Contains(r1.begin));
}

TEST(NodeKeyCacheTest, ConsumesRangeThenRefetches) {
  ObjectKeyGenerator gen;
  int fetches = 0;
  NodeKeyCache::Options opts;
  opts.initial_range_size = 16;
  NodeKeyCache cache(
      [&](uint64_t size, double) {
        ++fetches;
        return gen.AllocateRange(1, size);
      },
      opts);

  std::set<uint64_t> keys;
  for (int i = 0; i < 40; ++i) {
    EXPECT_TRUE(keys.insert(cache.NextKey(/*now=*/i * 10.0)).second);
  }
  EXPECT_EQ(keys.size(), 40u);
  EXPECT_GE(fetches, 2);
}

TEST(NodeKeyCacheTest, KeysStrictlyIncreasing) {
  ObjectKeyGenerator gen;
  NodeKeyCache cache(
      [&](uint64_t size, double) { return gen.AllocateRange(0, size); });
  uint64_t last = 0;
  for (int i = 0; i < 1000; ++i) {
    uint64_t k = cache.NextKey(0.0);
    EXPECT_GT(k, last);
    last = k;
  }
}

TEST(NodeKeyCacheTest, AdaptiveGrowthUnderLoad) {
  ObjectKeyGenerator::Options gen_opts;
  gen_opts.min_range_size = 1;
  ObjectKeyGenerator gen(gen_opts);
  NodeKeyCache::Options opts;
  opts.initial_range_size = 16;
  opts.min_range_size = 4;
  opts.max_range_size = 1024;
  opts.fast_exhaust_seconds = 1.0;
  NodeKeyCache cache(
      [&](uint64_t size, double) { return gen.AllocateRange(1, size); },
      opts);

  // Burn keys with no time passing: ranges exhaust "instantly", so the
  // request size should grow.
  for (int i = 0; i < 200; ++i) cache.NextKey(/*now=*/0.0);
  uint64_t grown = cache.current_range_size();
  EXPECT_GT(grown, 16u);

  // Now idle for long stretches: the size should shrink again.
  double now = 0;
  for (int i = 0; i < 2000; ++i) {
    now += 100.0;
    cache.NextKey(now);
  }
  EXPECT_LT(cache.current_range_size(), grown);
}

TEST(ObjectKeyGeneratorTest, ExhaustionTimescale) {
  // Sanity-check the paper's arithmetic: at 10,000 keys/s/node on 20
  // nodes, the 2^63 reserved keys last > 1.4 million years.
  double keys_per_year = 10000.0 * 20 * 86400 * 365;
  double years = static_cast<double>(uint64_t{1} << 63) / keys_per_year;
  EXPECT_GT(years, 1.4e6);
}

}  // namespace
}  // namespace cloudiq
