#include <gtest/gtest.h>

#include "columnar/table_loader.h"
#include "exec/executor.h"
#include "exec/explain.h"
#include "tests/test_util.h"

namespace cloudiq {
namespace {

using testing_util::SingleNodeHarness;

class ExecTest : public ::testing::Test {
 protected:
  ExecTest() {
    TransactionManager::Options opts;
    opts.blockmap_fanout = 16;
    opts.buffer_capacity_bytes = 8 << 20;
    txn_mgr_ = std::make_unique<TransactionManager>(h_.storage.get(),
                                                    &h_.system, opts);
    txn_mgr_->set_commit_listener(
        [this](NodeId node, const IntervalSet& keys) {
          h_.keygen.OnTransactionCommitted(node, keys);
        });
    LoadSales();
    txn_ = txn_mgr_->Begin();
    ctx_ = std::make_unique<QueryContext>(txn_mgr_.get(), txn_,
                                          &h_.system);
  }

  ~ExecTest() override { (void)txn_mgr_->Commit(txn_); }

  // sales(id, region_id, amount DECIMAL, day DATE-ish int, note)
  void LoadSales() {
    TableSchema schema;
    schema.name = "sales";
    schema.table_id = 10;
    schema.columns = {{"id", ColumnType::kInt64},
                      {"region_id", ColumnType::kInt64},
                      {"amount", ColumnType::kDecimal},
                      {"day", ColumnType::kInt64},
                      {"note", ColumnType::kString}};
    schema.partition_column = 3;
    schema.partition_bounds = {50};
    Transaction* txn = txn_mgr_->Begin();
    TableLoader loader(txn_mgr_.get(), txn, h_.cloud_space, schema);
    Batch batch;
    batch.AddColumn("id", {ColumnType::kInt64, {}, {}, {}});
    batch.AddColumn("region_id", {ColumnType::kInt64, {}, {}, {}});
    batch.AddColumn("amount", {ColumnType::kDecimal, {}, {}, {}});
    batch.AddColumn("day", {ColumnType::kInt64, {}, {}, {}});
    batch.AddColumn("note", {ColumnType::kString, {}, {}, {}});
    for (int64_t i = 0; i < 1000; ++i) {
      batch.columns[0].ints.push_back(i);
      batch.columns[1].ints.push_back(i % 4);
      batch.columns[2].ints.push_back((i % 10 + 1) * 100);  // 1.00-10.00
      batch.columns[3].ints.push_back(i % 100);
      batch.columns[4].strings.push_back(i % 7 == 0 ? "promo sale"
                                                    : "regular");
    }
    ASSERT_TRUE(loader.Append(batch.columns).ok());
    ASSERT_TRUE(loader.Finish(&h_.system).ok());
    ASSERT_TRUE(txn_mgr_->Commit(txn).ok());

    // regions(region_id, region_name)
    TableSchema rschema;
    rschema.name = "regions";
    rschema.table_id = 11;
    rschema.columns = {{"region_id", ColumnType::kInt64},
                       {"region_name", ColumnType::kString}};
    Transaction* rtxn = txn_mgr_->Begin();
    TableLoader rloader(txn_mgr_.get(), rtxn, h_.cloud_space, rschema);
    Batch rbatch;
    rbatch.AddColumn("region_id", {ColumnType::kInt64, {}, {}, {}});
    rbatch.AddColumn("region_name", {ColumnType::kString, {}, {}, {}});
    const char* names[3] = {"NORTH", "SOUTH", "EAST"};  // region 3 missing
    for (int64_t i = 0; i < 3; ++i) {
      rbatch.columns[0].ints.push_back(i);
      rbatch.columns[1].strings.push_back(names[i]);
    }
    ASSERT_TRUE(rloader.Append(rbatch.columns).ok());
    ASSERT_TRUE(rloader.Finish(&h_.system).ok());
    ASSERT_TRUE(txn_mgr_->Commit(rtxn).ok());
  }

  SingleNodeHarness h_;
  std::unique_ptr<TransactionManager> txn_mgr_;
  Transaction* txn_ = nullptr;
  std::unique_ptr<QueryContext> ctx_;
};

TEST_F(ExecTest, FullScan) {
  Result<TableReader> reader = ctx_->OpenTable(10);
  ASSERT_TRUE(reader.ok());
  Result<Batch> batch =
      ScanTable(ctx_.get(), &*reader, {"id", "amount", "note"});
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  EXPECT_EQ(batch->rows(), 1000u);
  EXPECT_EQ(batch->column("note").strings[0], "promo sale");
  EXPECT_GT(ctx_->node()->clock().now(), 0.0);  // scan consumed sim time
}

TEST_F(ExecTest, RangeScanPrunesAndFilters) {
  Result<TableReader> reader = ctx_->OpenTable(10);
  ASSERT_TRUE(reader.ok());
  Result<Batch> batch =
      ScanTable(ctx_.get(), &*reader, {"id", "day"},
                ScanRange{"day", 10, 19});
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->rows(), 100u);  // 10 days x 10 rows/day
  for (size_t r = 0; r < batch->rows(); ++r) {
    EXPECT_GE(batch->Int("day", r), 10);
    EXPECT_LE(batch->Int("day", r), 19);
  }
}

TEST_F(ExecTest, RangeColumnNotInProjectionIsDropped) {
  Result<TableReader> reader = ctx_->OpenTable(10);
  ASSERT_TRUE(reader.ok());
  // Filter on `day` without selecting it: the scan reads it internally
  // for the exact filter but must not leak it into the output shape.
  Result<Batch> batch = ScanTable(ctx_.get(), &*reader, {"id"},
                                  ScanRange{"day", 10, 19});
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->rows(), 100u);
  EXPECT_EQ(batch->columns.size(), 1u);
  EXPECT_EQ(batch->names, std::vector<std::string>{"id"});
}

TEST_F(ExecTest, EmptyRangeYieldsEmptyShapedBatch) {
  Result<TableReader> reader = ctx_->OpenTable(10);
  ASSERT_TRUE(reader.ok());
  Result<Batch> batch = ScanTable(ctx_.get(), &*reader, {"id", "note"},
                                  ScanRange{"day", 1000, 2000});
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->rows(), 0u);
  EXPECT_EQ(batch->columns.size(), 2u);
  EXPECT_EQ(batch->columns[1].type, ColumnType::kString);
}

TEST_F(ExecTest, PartitionPruningOnPartitionColumn) {
  Result<TableReader> reader = ctx_->OpenTable(10);
  ASSERT_TRUE(reader.ok());
  // day >= 60 lives entirely in partition 1.
  Result<Batch> batch = ScanTable(ctx_.get(), &*reader, {"day"},
                                  ScanRange{"day", 60, 99});
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->rows(), 400u);
}

TEST_F(ExecTest, FilterBatchRowwise) {
  Result<TableReader> reader = ctx_->OpenTable(10);
  ASSERT_TRUE(reader.ok());
  Result<Batch> batch = ScanTable(ctx_.get(), &*reader, {"id", "note"});
  ASSERT_TRUE(batch.ok());
  Batch promo = FilterBatch(ctx_.get(), *batch, [](const Batch& b, size_t r) {
    return b.Str("note", r) == "promo sale";
  });
  EXPECT_EQ(promo.rows(), 1000u / 7 + 1);
}

TEST_F(ExecTest, InnerJoinBringsRightColumns) {
  Result<TableReader> sales = ctx_->OpenTable(10);
  Result<TableReader> regions = ctx_->OpenTable(11);
  ASSERT_TRUE(sales.ok() && regions.ok());
  Result<Batch> s = ScanTable(ctx_.get(), &*sales, {"id", "region_id"});
  Result<Batch> g =
      ScanTable(ctx_.get(), &*regions, {"region_id", "region_name"});
  ASSERT_TRUE(s.ok() && g.ok());
  Result<Batch> joined = HashJoin(ctx_.get(), *s, "region_id", *g,
                                  "region_id", JoinType::kInner);
  ASSERT_TRUE(joined.ok());
  // Region 3 has no match: 250 rows drop out.
  EXPECT_EQ(joined->rows(), 750u);
  EXPECT_GE(joined->Col("region_name"), 0);
  for (size_t r = 0; r < joined->rows(); ++r) {
    int64_t id = joined->Int("region_id", r);
    const char* names[3] = {"NORTH", "SOUTH", "EAST"};
    EXPECT_EQ(joined->Str("region_name", r), names[id]);
  }
}

TEST_F(ExecTest, SemiAndAntiJoin) {
  Result<TableReader> sales = ctx_->OpenTable(10);
  Result<TableReader> regions = ctx_->OpenTable(11);
  ASSERT_TRUE(sales.ok() && regions.ok());
  Result<Batch> s = ScanTable(ctx_.get(), &*sales, {"id", "region_id"});
  Result<Batch> g = ScanTable(ctx_.get(), &*regions, {"region_id"});
  ASSERT_TRUE(s.ok() && g.ok());
  Result<Batch> semi = HashJoin(ctx_.get(), *s, "region_id", *g,
                                "region_id", JoinType::kLeftSemi);
  Result<Batch> anti = HashJoin(ctx_.get(), *s, "region_id", *g,
                                "region_id", JoinType::kLeftAnti);
  ASSERT_TRUE(semi.ok() && anti.ok());
  EXPECT_EQ(semi->rows(), 750u);
  EXPECT_EQ(anti->rows(), 250u);
  EXPECT_EQ(semi->rows() + anti->rows(), s->rows());
  // Anti rows are exactly region 3.
  for (size_t r = 0; r < anti->rows(); ++r) {
    EXPECT_EQ(anti->Int("region_id", r), 3);
  }
}

TEST_F(ExecTest, StringKeyJoin) {
  Result<TableReader> sales = ctx_->OpenTable(10);
  ASSERT_TRUE(sales.ok());
  Result<Batch> s = ScanTable(ctx_.get(), &*sales, {"id", "note"});
  ASSERT_TRUE(s.ok());
  Batch right;
  right.AddColumn("note", {ColumnType::kString, {}, {}, {}});
  right.AddColumn("weight", {ColumnType::kInt64, {}, {}, {}});
  right.columns[0].strings = {"promo sale"};
  right.columns[1].ints = {9};
  Result<Batch> joined =
      HashJoin(ctx_.get(), *s, "note", right, "note", JoinType::kInner);
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(joined->rows(), 1000u / 7 + 1);
  EXPECT_EQ(joined->Int("weight", 0), 9);
}

TEST_F(ExecTest, HashAggregateAllOps) {
  Result<TableReader> sales = ctx_->OpenTable(10);
  ASSERT_TRUE(sales.ok());
  Result<Batch> s =
      ScanTable(ctx_.get(), &*sales, {"region_id", "amount", "id"});
  ASSERT_TRUE(s.ok());
  Result<Batch> agg =
      HashAggregate(ctx_.get(), *s, {"region_id"},
                    {{AggOp::kCount, "", "n"},
                     {AggOp::kSum, "amount", "total"},
                     {AggOp::kMin, "id", "min_id"},
                     {AggOp::kMax, "id", "max_id"},
                     {AggOp::kAvg, "amount", "avg_amount"}});
  ASSERT_TRUE(agg.ok());
  EXPECT_EQ(agg->rows(), 4u);
  for (size_t r = 0; r < 4; ++r) {
    EXPECT_EQ(agg->Int("n", r), 250);
    int64_t region = agg->Int("region_id", r);
    EXPECT_EQ(agg->Int("min_id", r), region);
    EXPECT_EQ(agg->Int("max_id", r), 996 + region);
    // amount pattern repeats every 10 ids; per region sum is constant.
    EXPECT_GT(agg->Int("total", r), 0);
    EXPECT_NEAR(agg->Double("avg_amount", r),
                static_cast<double>(agg->Int("total", r)) / 250, 1e-6);
  }
}

TEST_F(ExecTest, GlobalAggregateNoKeys) {
  Result<TableReader> sales = ctx_->OpenTable(10);
  ASSERT_TRUE(sales.ok());
  Result<Batch> s = ScanTable(ctx_.get(), &*sales, {"amount"});
  ASSERT_TRUE(s.ok());
  Result<Batch> agg = HashAggregate(ctx_.get(), *s, {},
                                    {{AggOp::kCount, "", "n"},
                                     {AggOp::kSum, "amount", "total"}});
  ASSERT_TRUE(agg.ok());
  ASSERT_EQ(agg->rows(), 1u);
  EXPECT_EQ(agg->Int("n", 0), 1000);
  // 100 full cycles of (1+..+10)*100 scaled cents = 100 * 5500.
  EXPECT_EQ(agg->Int("total", 0), 100 * 5500);
}

TEST_F(ExecTest, SortAndLimit) {
  Result<TableReader> sales = ctx_->OpenTable(10);
  ASSERT_TRUE(sales.ok());
  Result<Batch> s = ScanTable(ctx_.get(), &*sales, {"id", "amount"});
  ASSERT_TRUE(s.ok());
  Batch sorted = SortBatch(ctx_.get(), *s,
                           {{"amount", false}, {"id", true}}, 5);
  ASSERT_EQ(sorted.rows(), 5u);
  // Highest amount = 1000 (ids 9, 19, ...), ties broken by id asc.
  EXPECT_EQ(sorted.Int("amount", 0), 1000);
  EXPECT_EQ(sorted.Int("id", 0), 9);
  EXPECT_EQ(sorted.Int("id", 1), 19);
}

TEST_F(ExecTest, ComputedColumn) {
  Result<TableReader> sales = ctx_->OpenTable(10);
  ASSERT_TRUE(sales.ok());
  Result<Batch> s = ScanTable(ctx_.get(), &*sales, {"amount"});
  ASSERT_TRUE(s.ok());
  Batch with = WithComputedColumn(
      ctx_.get(), *s, "dollars", ColumnType::kDouble,
      [](const Batch& b, size_t r, ColumnVector* out) {
        out->doubles.push_back(DecimalToDouble(b.Int("amount", r)));
      });
  EXPECT_DOUBLE_EQ(with.Double("dollars", 0),
                   with.Int("amount", 0) / 100.0);
}

TEST_F(ExecTest, ScanRowIdsReadsOnlyRequestedRows) {
  Result<TableReader> sales = ctx_->OpenTable(10);
  ASSERT_TRUE(sales.ok());
  IntervalSet rows;
  rows.InsertRange(5, 8);   // partition-local rows
  rows.Insert(100);
  Result<Batch> batch =
      ScanRowIds(ctx_.get(), &*sales, 0, {"id", "note"}, rows);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  EXPECT_EQ(batch->rows(), 4u);
}

TEST_F(ExecTest, OperatorsRegisterDenselyWithStats) {
  CostLedger& ledger = h_.env.telemetry().ledger();
  ctx_->SetAttribution(ledger.NextQueryId(), "stats-query");
  ScopedQueryAttribution scope(ctx_.get());

  Result<TableReader> sales = ctx_->OpenTable(10);
  ASSERT_TRUE(sales.ok());
  Result<Batch> s = ScanTable(ctx_.get(), &*sales, {"id", "region_id"});
  ASSERT_TRUE(s.ok());
  Batch big = FilterBatch(ctx_.get(), *s, [](const Batch& b, size_t r) {
    return b.Int("id", r) >= 500;
  });
  Result<Batch> agg = HashAggregate(ctx_.get(), big, {"region_id"},
                                    {{AggOp::kCount, "", "n"}});
  ASSERT_TRUE(agg.ok());

  const auto& ops = ctx_->operators();
  ASSERT_EQ(ops.size(), 3u);
  EXPECT_EQ(ops[0].name, "scan sales");
  EXPECT_EQ(ops[1].name, "filter");
  EXPECT_EQ(ops[2].name, "hash aggregate");
  EXPECT_EQ(ops[0].rows, 1000u);
  EXPECT_EQ(ops[1].rows, 500u);
  EXPECT_EQ(ops[2].rows, 4u);
  for (const auto& op : ops) {
    EXPECT_EQ(op.batches, 1u);
    EXPECT_GT(op.sim_seconds, 0) << op.name;
  }
}

TEST_F(ExecTest, ExplainAnalyzeOperatorRowsSumToQueryLedger) {
  CostLedger& ledger = h_.env.telemetry().ledger();
  uint64_t query_id = ledger.NextQueryId();
  ctx_->SetAttribution(query_id, "explain-query");
  {
    ScopedQueryAttribution scope(ctx_.get());
    Result<TableReader> sales = ctx_->OpenTable(10);
    ASSERT_TRUE(sales.ok());
    Result<Batch> s =
        ScanTable(ctx_.get(), &*sales, {"id", "day", "amount"});
    ASSERT_TRUE(s.ok());
    Result<Batch> agg = HashAggregate(ctx_.get(), *s, {"day"},
                                      {{AggOp::kSum, "amount", "total"}});
    ASSERT_TRUE(agg.ok());
  }

  // Fold every ledger entry of this query: the per-operator rows EXPLAIN
  // prints, plus the query-level row (operator_id -1, work outside any
  // operator scope). Their sum must be exactly the query total.
  CostLedger::Entry folded;
  uint64_t operator_entries = 0;
  for (const auto& [key, entry] : ledger.entries()) {
    if (key.query_id != query_id) continue;
    EXPECT_EQ(key.node_id, ctx_->attribution().node_id);
    if (key.operator_id >= 0) {
      ASSERT_LT(static_cast<size_t>(key.operator_id),
                ctx_->operators().size());
      ++operator_entries;
    }
    folded.Fold(entry);
  }
  EXPECT_GT(operator_entries, 0u);

  CostLedger::Entry total = ledger.QueryTotal(query_id);
  EXPECT_EQ(folded.Requests(), total.Requests());
  EXPECT_EQ(folded.buffer_hits + folded.buffer_misses,
            total.buffer_hits + total.buffer_misses);
  EXPECT_DOUBLE_EQ(folded.sim_seconds, total.sim_seconds);
  EXPECT_DOUBLE_EQ(folded.TotalUsd(ledger.prices()),
                   total.TotalUsd(ledger.prices()));
  // The scan touched pages, so the buffer manager charged this query.
  EXPECT_GT(total.buffer_hits + total.buffer_misses, 0u);
  EXPECT_GT(total.sim_seconds, 0);

  std::string text = FormatExplainAnalyze(ctx_.get());
  EXPECT_NE(text.find("EXPLAIN ANALYZE explain-query"), std::string::npos);
  EXPECT_NE(text.find("scan sales"), std::string::npos);
  EXPECT_NE(text.find("hash aggregate"), std::string::npos);
  EXPECT_NE(text.find("total (incl. query-level work)"), std::string::npos);
}

TEST_F(ExecTest, UnattributedWorkStaysOffQueryLedgers) {
  CostLedger& ledger = h_.env.telemetry().ledger();
  uint64_t query_id = ledger.NextQueryId();
  ctx_->SetAttribution(query_id, "scoped");
  // No ScopedQueryAttribution installed: operator scopes still narrow the
  // context, but outside them the default (query 0) is current.
  Result<TableReader> sales = ctx_->OpenTable(10);
  ASSERT_TRUE(sales.ok());
  Result<Batch> s = ScanTable(ctx_.get(), &*sales, {"id"});
  ASSERT_TRUE(s.ok());

  // The scan ran inside an OperatorScope built from the query's
  // attribution, so its work is still charged to the query...
  EXPECT_GT(ledger.QueryTotal(query_id).sim_seconds, 0);
  // ...but nothing leaked onto other query ids.
  for (const auto& [key, entry] : ledger.entries()) {
    EXPECT_TRUE(key.query_id == query_id || key.query_id == 0)
        << "unexpected query " << key.query_id;
  }
}

}  // namespace
}  // namespace cloudiq
