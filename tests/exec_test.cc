#include <gtest/gtest.h>

#include <atomic>

#include "columnar/table_loader.h"
#include "exec/executor.h"
#include "exec/explain.h"
#include "exec/morsel.h"
#include "exec/task_pool.h"
#include "tests/test_util.h"

namespace cloudiq {
namespace {

using testing_util::SingleNodeHarness;

// --- morsel partitioning -----------------------------------------------

SegmentMeta MakeSeg(std::vector<uint32_t> page_rows) {
  SegmentMeta seg;
  for (uint32_t pr : page_rows) {
    seg.page_rows.push_back(pr);
    seg.row_count += pr;
  }
  return seg;
}

IntervalSet AllRows(const SegmentMeta& seg) {
  IntervalSet rows;
  rows.InsertRange(0, seg.row_count);
  return rows;
}

TEST(MorselTest, EmptyRowSetMakesNoMorsels) {
  SegmentMeta seg = MakeSeg({100, 100, 50});
  std::vector<Morsel> out;
  AppendMorsels(seg, 0, IntervalSet(), 100, &out);
  EXPECT_TRUE(out.empty());
}

TEST(MorselTest, TargetLargerThanTableYieldsOneMorsel) {
  SegmentMeta seg = MakeSeg({100, 100, 50});
  std::vector<Morsel> out;
  AppendMorsels(seg, 3, AllRows(seg), 10000, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].partition, 3u);
  EXPECT_EQ(out[0].row_begin, 0u);
  EXPECT_EQ(out[0].row_end, 250u);
  EXPECT_EQ(out[0].row_count, 250u);
}

TEST(MorselTest, SinglePageTableYieldsOneMorsel) {
  SegmentMeta seg = MakeSeg({100});
  std::vector<Morsel> out;
  AppendMorsels(seg, 0, AllRows(seg), 64, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].row_begin, 0u);
  EXPECT_EQ(out[0].row_end, 100u);
}

TEST(MorselTest, CutsAtPageBoundariesWithRemainderTail) {
  SegmentMeta seg = MakeSeg({100, 100, 50});
  std::vector<Morsel> out;
  AppendMorsels(seg, 0, AllRows(seg), 100, &out);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].row_begin, 0u);
  EXPECT_EQ(out[0].row_end, 100u);
  EXPECT_EQ(out[1].row_begin, 100u);
  EXPECT_EQ(out[1].row_end, 200u);
  // The 50-row tail never reaches the target: remainder morsel.
  EXPECT_EQ(out[2].row_begin, 200u);
  EXPECT_EQ(out[2].row_end, 250u);
  EXPECT_EQ(out[2].row_count, 50u);
}

TEST(MorselTest, MorselCoversMultiplePagesUntilTarget) {
  SegmentMeta seg = MakeSeg({100, 100, 50});
  std::vector<Morsel> out;
  AppendMorsels(seg, 0, AllRows(seg), 150, &out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].row_end, 200u);  // closed by the page reaching >= 150
  EXPECT_EQ(out[0].row_count, 200u);
  EXPECT_EQ(out[1].row_begin, 200u);
  EXPECT_EQ(out[1].row_count, 50u);
}

TEST(MorselTest, PagesWithoutCandidatesExtendNoMorsel) {
  SegmentMeta seg = MakeSeg({100, 100, 50});
  IntervalSet rows;
  rows.InsertRange(210, 220);  // only the last page has candidates
  std::vector<Morsel> out;
  AppendMorsels(seg, 0, rows, 100, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].row_begin, 200u);
  EXPECT_EQ(out[0].row_end, 250u);
  EXPECT_EQ(out[0].row_count, 10u);
  EXPECT_EQ(out[0].rows.Count(), 10u);
}

TEST(MorselTest, TargetZeroTreatedAsOne) {
  SegmentMeta seg = MakeSeg({10, 10});
  std::vector<Morsel> out;
  AppendMorsels(seg, 0, AllRows(seg), 0, &out);
  EXPECT_EQ(out.size(), 2u);  // every non-empty page closes a morsel
}

TEST(MorselTest, RowChunksCoverRangeInOrder) {
  EXPECT_TRUE(MakeRowChunks(0, 16).empty());
  std::vector<RowChunk> chunks = MakeRowChunks(10, 4);
  ASSERT_EQ(chunks.size(), 3u);
  EXPECT_EQ(chunks[0].begin, 0u);
  EXPECT_EQ(chunks[0].end, 4u);
  EXPECT_EQ(chunks[2].begin, 8u);
  EXPECT_EQ(chunks[2].end, 10u);
  EXPECT_EQ(MakeRowChunks(3, 0).size(), 3u);  // target 0 -> 1
}

TEST(MorselTest, ParseExecModeRoundTrips) {
  ExecMode mode = ExecMode::kSim;
  EXPECT_TRUE(ParseExecMode("native", &mode));
  EXPECT_EQ(mode, ExecMode::kNative);
  EXPECT_TRUE(ParseExecMode("sim", &mode));
  EXPECT_EQ(mode, ExecMode::kSim);
  EXPECT_FALSE(ParseExecMode("turbo", &mode));
  EXPECT_STREQ(ExecModeName(ExecMode::kNative), "native");
}

TEST(TaskPoolTest, NativeRunsEveryIndexExactlyOnce) {
  constexpr size_t kCount = 257;
  std::vector<std::atomic<int>> hits(kCount);
  TaskPool::Global().RunIndexed(ExecMode::kNative, 4, kCount,
                                [&hits](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(TaskPoolTest, SimModeRunsInlineInAscendingOrder) {
  std::vector<size_t> order;
  TaskPool::Global().RunIndexed(ExecMode::kSim, 8, 5,
                                [&order](size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

class ExecTest : public ::testing::Test {
 protected:
  ExecTest() {
    TransactionManager::Options opts;
    opts.blockmap_fanout = 16;
    opts.buffer_capacity_bytes = 8 << 20;
    txn_mgr_ = std::make_unique<TransactionManager>(h_.storage.get(),
                                                    &h_.system, opts);
    txn_mgr_->set_commit_listener(
        [this](NodeId node, const IntervalSet& keys) {
          h_.keygen.OnTransactionCommitted(node, keys);
        });
    LoadSales();
    txn_ = txn_mgr_->Begin();
    ctx_ = std::make_unique<QueryContext>(txn_mgr_.get(), txn_,
                                          &h_.system);
  }

  ~ExecTest() override { (void)txn_mgr_->Commit(txn_); }

  // sales(id, region_id, amount DECIMAL, day DATE-ish int, note)
  void LoadSales() {
    TableSchema schema;
    schema.name = "sales";
    schema.table_id = 10;
    schema.columns = {{"id", ColumnType::kInt64},
                      {"region_id", ColumnType::kInt64},
                      {"amount", ColumnType::kDecimal},
                      {"day", ColumnType::kInt64},
                      {"note", ColumnType::kString}};
    schema.partition_column = 3;
    schema.partition_bounds = {50};
    Transaction* txn = txn_mgr_->Begin();
    TableLoader loader(txn_mgr_.get(), txn, h_.cloud_space, schema);
    Batch batch;
    batch.AddColumn("id", {ColumnType::kInt64, {}, {}, {}});
    batch.AddColumn("region_id", {ColumnType::kInt64, {}, {}, {}});
    batch.AddColumn("amount", {ColumnType::kDecimal, {}, {}, {}});
    batch.AddColumn("day", {ColumnType::kInt64, {}, {}, {}});
    batch.AddColumn("note", {ColumnType::kString, {}, {}, {}});
    for (int64_t i = 0; i < 1000; ++i) {
      batch.columns[0].ints.push_back(i);
      batch.columns[1].ints.push_back(i % 4);
      batch.columns[2].ints.push_back((i % 10 + 1) * 100);  // 1.00-10.00
      batch.columns[3].ints.push_back(i % 100);
      batch.columns[4].strings.push_back(i % 7 == 0 ? "promo sale"
                                                    : "regular");
    }
    ASSERT_TRUE(loader.Append(batch.columns).ok());
    ASSERT_TRUE(loader.Finish(&h_.system).ok());
    ASSERT_TRUE(txn_mgr_->Commit(txn).ok());

    // regions(region_id, region_name)
    TableSchema rschema;
    rschema.name = "regions";
    rschema.table_id = 11;
    rschema.columns = {{"region_id", ColumnType::kInt64},
                       {"region_name", ColumnType::kString}};
    Transaction* rtxn = txn_mgr_->Begin();
    TableLoader rloader(txn_mgr_.get(), rtxn, h_.cloud_space, rschema);
    Batch rbatch;
    rbatch.AddColumn("region_id", {ColumnType::kInt64, {}, {}, {}});
    rbatch.AddColumn("region_name", {ColumnType::kString, {}, {}, {}});
    const char* names[3] = {"NORTH", "SOUTH", "EAST"};  // region 3 missing
    for (int64_t i = 0; i < 3; ++i) {
      rbatch.columns[0].ints.push_back(i);
      rbatch.columns[1].strings.push_back(names[i]);
    }
    ASSERT_TRUE(rloader.Append(rbatch.columns).ok());
    ASSERT_TRUE(rloader.Finish(&h_.system).ok());
    ASSERT_TRUE(txn_mgr_->Commit(rtxn).ok());
  }

  SingleNodeHarness h_;
  std::unique_ptr<TransactionManager> txn_mgr_;
  Transaction* txn_ = nullptr;
  std::unique_ptr<QueryContext> ctx_;
};

TEST_F(ExecTest, FullScan) {
  Result<TableReader> reader = ctx_->OpenTable(10);
  ASSERT_TRUE(reader.ok());
  Result<Batch> batch =
      ScanTable(ctx_.get(), &*reader, {"id", "amount", "note"});
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  EXPECT_EQ(batch->rows(), 1000u);
  EXPECT_EQ(batch->column("note").strings[0], "promo sale");
  EXPECT_GT(ctx_->node()->clock().now(), 0.0);  // scan consumed sim time
}

TEST_F(ExecTest, RangeScanPrunesAndFilters) {
  Result<TableReader> reader = ctx_->OpenTable(10);
  ASSERT_TRUE(reader.ok());
  Result<Batch> batch =
      ScanTable(ctx_.get(), &*reader, {"id", "day"},
                ScanRange{"day", 10, 19});
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->rows(), 100u);  // 10 days x 10 rows/day
  for (size_t r = 0; r < batch->rows(); ++r) {
    EXPECT_GE(batch->Int("day", r), 10);
    EXPECT_LE(batch->Int("day", r), 19);
  }
}

TEST_F(ExecTest, RangeColumnNotInProjectionIsDropped) {
  Result<TableReader> reader = ctx_->OpenTable(10);
  ASSERT_TRUE(reader.ok());
  // Filter on `day` without selecting it: the scan reads it internally
  // for the exact filter but must not leak it into the output shape.
  Result<Batch> batch = ScanTable(ctx_.get(), &*reader, {"id"},
                                  ScanRange{"day", 10, 19});
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->rows(), 100u);
  EXPECT_EQ(batch->columns.size(), 1u);
  EXPECT_EQ(batch->names, std::vector<std::string>{"id"});
}

TEST_F(ExecTest, EmptyRangeYieldsEmptyShapedBatch) {
  Result<TableReader> reader = ctx_->OpenTable(10);
  ASSERT_TRUE(reader.ok());
  Result<Batch> batch = ScanTable(ctx_.get(), &*reader, {"id", "note"},
                                  ScanRange{"day", 1000, 2000});
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->rows(), 0u);
  EXPECT_EQ(batch->columns.size(), 2u);
  EXPECT_EQ(batch->columns[1].type, ColumnType::kString);
}

TEST_F(ExecTest, PartitionPruningOnPartitionColumn) {
  Result<TableReader> reader = ctx_->OpenTable(10);
  ASSERT_TRUE(reader.ok());
  // day >= 60 lives entirely in partition 1.
  Result<Batch> batch = ScanTable(ctx_.get(), &*reader, {"day"},
                                  ScanRange{"day", 60, 99});
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->rows(), 400u);
}

TEST_F(ExecTest, FilterBatchRowwise) {
  Result<TableReader> reader = ctx_->OpenTable(10);
  ASSERT_TRUE(reader.ok());
  Result<Batch> batch = ScanTable(ctx_.get(), &*reader, {"id", "note"});
  ASSERT_TRUE(batch.ok());
  Batch promo = FilterBatch(ctx_.get(), *batch, [](const Batch& b, size_t r) {
    return b.Str("note", r) == "promo sale";
  });
  EXPECT_EQ(promo.rows(), 1000u / 7 + 1);
}

TEST_F(ExecTest, InnerJoinBringsRightColumns) {
  Result<TableReader> sales = ctx_->OpenTable(10);
  Result<TableReader> regions = ctx_->OpenTable(11);
  ASSERT_TRUE(sales.ok() && regions.ok());
  Result<Batch> s = ScanTable(ctx_.get(), &*sales, {"id", "region_id"});
  Result<Batch> g =
      ScanTable(ctx_.get(), &*regions, {"region_id", "region_name"});
  ASSERT_TRUE(s.ok() && g.ok());
  Result<Batch> joined = HashJoin(ctx_.get(), *s, "region_id", *g,
                                  "region_id", JoinType::kInner);
  ASSERT_TRUE(joined.ok());
  // Region 3 has no match: 250 rows drop out.
  EXPECT_EQ(joined->rows(), 750u);
  EXPECT_GE(joined->Col("region_name"), 0);
  for (size_t r = 0; r < joined->rows(); ++r) {
    int64_t id = joined->Int("region_id", r);
    const char* names[3] = {"NORTH", "SOUTH", "EAST"};
    EXPECT_EQ(joined->Str("region_name", r), names[id]);
  }
}

TEST_F(ExecTest, SemiAndAntiJoin) {
  Result<TableReader> sales = ctx_->OpenTable(10);
  Result<TableReader> regions = ctx_->OpenTable(11);
  ASSERT_TRUE(sales.ok() && regions.ok());
  Result<Batch> s = ScanTable(ctx_.get(), &*sales, {"id", "region_id"});
  Result<Batch> g = ScanTable(ctx_.get(), &*regions, {"region_id"});
  ASSERT_TRUE(s.ok() && g.ok());
  Result<Batch> semi = HashJoin(ctx_.get(), *s, "region_id", *g,
                                "region_id", JoinType::kLeftSemi);
  Result<Batch> anti = HashJoin(ctx_.get(), *s, "region_id", *g,
                                "region_id", JoinType::kLeftAnti);
  ASSERT_TRUE(semi.ok() && anti.ok());
  EXPECT_EQ(semi->rows(), 750u);
  EXPECT_EQ(anti->rows(), 250u);
  EXPECT_EQ(semi->rows() + anti->rows(), s->rows());
  // Anti rows are exactly region 3.
  for (size_t r = 0; r < anti->rows(); ++r) {
    EXPECT_EQ(anti->Int("region_id", r), 3);
  }
}

TEST_F(ExecTest, StringKeyJoin) {
  Result<TableReader> sales = ctx_->OpenTable(10);
  ASSERT_TRUE(sales.ok());
  Result<Batch> s = ScanTable(ctx_.get(), &*sales, {"id", "note"});
  ASSERT_TRUE(s.ok());
  Batch right;
  right.AddColumn("note", {ColumnType::kString, {}, {}, {}});
  right.AddColumn("weight", {ColumnType::kInt64, {}, {}, {}});
  right.columns[0].strings = {"promo sale"};
  right.columns[1].ints = {9};
  Result<Batch> joined =
      HashJoin(ctx_.get(), *s, "note", right, "note", JoinType::kInner);
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(joined->rows(), 1000u / 7 + 1);
  EXPECT_EQ(joined->Int("weight", 0), 9);
}

TEST_F(ExecTest, HashAggregateAllOps) {
  Result<TableReader> sales = ctx_->OpenTable(10);
  ASSERT_TRUE(sales.ok());
  Result<Batch> s =
      ScanTable(ctx_.get(), &*sales, {"region_id", "amount", "id"});
  ASSERT_TRUE(s.ok());
  Result<Batch> agg =
      HashAggregate(ctx_.get(), *s, {"region_id"},
                    {{AggOp::kCount, "", "n"},
                     {AggOp::kSum, "amount", "total"},
                     {AggOp::kMin, "id", "min_id"},
                     {AggOp::kMax, "id", "max_id"},
                     {AggOp::kAvg, "amount", "avg_amount"}});
  ASSERT_TRUE(agg.ok());
  EXPECT_EQ(agg->rows(), 4u);
  for (size_t r = 0; r < 4; ++r) {
    EXPECT_EQ(agg->Int("n", r), 250);
    int64_t region = agg->Int("region_id", r);
    EXPECT_EQ(agg->Int("min_id", r), region);
    EXPECT_EQ(agg->Int("max_id", r), 996 + region);
    // amount pattern repeats every 10 ids; per region sum is constant.
    EXPECT_GT(agg->Int("total", r), 0);
    EXPECT_NEAR(agg->Double("avg_amount", r),
                static_cast<double>(agg->Int("total", r)) / 250, 1e-6);
  }
}

TEST_F(ExecTest, GlobalAggregateNoKeys) {
  Result<TableReader> sales = ctx_->OpenTable(10);
  ASSERT_TRUE(sales.ok());
  Result<Batch> s = ScanTable(ctx_.get(), &*sales, {"amount"});
  ASSERT_TRUE(s.ok());
  Result<Batch> agg = HashAggregate(ctx_.get(), *s, {},
                                    {{AggOp::kCount, "", "n"},
                                     {AggOp::kSum, "amount", "total"}});
  ASSERT_TRUE(agg.ok());
  ASSERT_EQ(agg->rows(), 1u);
  EXPECT_EQ(agg->Int("n", 0), 1000);
  // 100 full cycles of (1+..+10)*100 scaled cents = 100 * 5500.
  EXPECT_EQ(agg->Int("total", 0), 100 * 5500);
}

TEST_F(ExecTest, SortAndLimit) {
  Result<TableReader> sales = ctx_->OpenTable(10);
  ASSERT_TRUE(sales.ok());
  Result<Batch> s = ScanTable(ctx_.get(), &*sales, {"id", "amount"});
  ASSERT_TRUE(s.ok());
  Batch sorted = SortBatch(ctx_.get(), *s,
                           {{"amount", false}, {"id", true}}, 5);
  ASSERT_EQ(sorted.rows(), 5u);
  // Highest amount = 1000 (ids 9, 19, ...), ties broken by id asc.
  EXPECT_EQ(sorted.Int("amount", 0), 1000);
  EXPECT_EQ(sorted.Int("id", 0), 9);
  EXPECT_EQ(sorted.Int("id", 1), 19);
}

TEST_F(ExecTest, ComputedColumn) {
  Result<TableReader> sales = ctx_->OpenTable(10);
  ASSERT_TRUE(sales.ok());
  Result<Batch> s = ScanTable(ctx_.get(), &*sales, {"amount"});
  ASSERT_TRUE(s.ok());
  Batch with = WithComputedColumn(
      ctx_.get(), *s, "dollars", ColumnType::kDouble,
      [](const Batch& b, size_t r, ColumnVector* out) {
        out->doubles.push_back(DecimalToDouble(b.Int("amount", r)));
      });
  EXPECT_DOUBLE_EQ(with.Double("dollars", 0),
                   with.Int("amount", 0) / 100.0);
}

TEST_F(ExecTest, ScanRowIdsReadsOnlyRequestedRows) {
  Result<TableReader> sales = ctx_->OpenTable(10);
  ASSERT_TRUE(sales.ok());
  IntervalSet rows;
  rows.InsertRange(5, 8);   // partition-local rows
  rows.Insert(100);
  Result<Batch> batch =
      ScanRowIds(ctx_.get(), &*sales, 0, {"id", "note"}, rows);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  EXPECT_EQ(batch->rows(), 4u);
}

TEST_F(ExecTest, OperatorsRegisterDenselyWithStats) {
  CostLedger& ledger = h_.env.telemetry().ledger();
  ctx_->SetAttribution(ledger.NextQueryId(), "stats-query");
  ScopedQueryAttribution scope(ctx_.get());

  Result<TableReader> sales = ctx_->OpenTable(10);
  ASSERT_TRUE(sales.ok());
  Result<Batch> s = ScanTable(ctx_.get(), &*sales, {"id", "region_id"});
  ASSERT_TRUE(s.ok());
  Batch big = FilterBatch(ctx_.get(), *s, [](const Batch& b, size_t r) {
    return b.Int("id", r) >= 500;
  });
  Result<Batch> agg = HashAggregate(ctx_.get(), big, {"region_id"},
                                    {{AggOp::kCount, "", "n"}});
  ASSERT_TRUE(agg.ok());

  const auto& ops = ctx_->operators();
  ASSERT_EQ(ops.size(), 3u);
  EXPECT_EQ(ops[0].name, "scan sales");
  EXPECT_EQ(ops[1].name, "filter");
  EXPECT_EQ(ops[2].name, "hash aggregate");
  EXPECT_EQ(ops[0].rows, 1000u);
  EXPECT_EQ(ops[1].rows, 500u);
  EXPECT_EQ(ops[2].rows, 4u);
  for (const auto& op : ops) {
    EXPECT_EQ(op.batches, 1u);
    EXPECT_GT(op.sim_seconds, 0) << op.name;
  }
}

TEST_F(ExecTest, ExplainAnalyzeOperatorRowsSumToQueryLedger) {
  CostLedger& ledger = h_.env.telemetry().ledger();
  uint64_t query_id = ledger.NextQueryId();
  ctx_->SetAttribution(query_id, "explain-query");
  {
    ScopedQueryAttribution scope(ctx_.get());
    Result<TableReader> sales = ctx_->OpenTable(10);
    ASSERT_TRUE(sales.ok());
    Result<Batch> s =
        ScanTable(ctx_.get(), &*sales, {"id", "day", "amount"});
    ASSERT_TRUE(s.ok());
    Result<Batch> agg = HashAggregate(ctx_.get(), *s, {"day"},
                                      {{AggOp::kSum, "amount", "total"}});
    ASSERT_TRUE(agg.ok());
  }

  // Fold every ledger entry of this query: the per-operator rows EXPLAIN
  // prints, plus the query-level row (operator_id -1, work outside any
  // operator scope). Their sum must be exactly the query total.
  CostLedger::Entry folded;
  uint64_t operator_entries = 0;
  for (const auto& [key, entry] : ledger.entries()) {
    if (key.query_id != query_id) continue;
    EXPECT_EQ(key.node_id, ctx_->attribution().node_id);
    if (key.operator_id >= 0) {
      ASSERT_LT(static_cast<size_t>(key.operator_id),
                ctx_->operators().size());
      ++operator_entries;
    }
    folded.Fold(entry);
  }
  EXPECT_GT(operator_entries, 0u);

  CostLedger::Entry total = ledger.QueryTotal(query_id);
  EXPECT_EQ(folded.Requests(), total.Requests());
  EXPECT_EQ(folded.buffer_hits + folded.buffer_misses,
            total.buffer_hits + total.buffer_misses);
  EXPECT_DOUBLE_EQ(folded.sim_seconds, total.sim_seconds);
  EXPECT_DOUBLE_EQ(folded.TotalUsd(ledger.prices()),
                   total.TotalUsd(ledger.prices()));
  // The scan touched pages, so the buffer manager charged this query.
  EXPECT_GT(total.buffer_hits + total.buffer_misses, 0u);
  EXPECT_GT(total.sim_seconds, 0);

  std::string text = FormatExplainAnalyze(ctx_.get());
  EXPECT_NE(text.find("EXPLAIN ANALYZE explain-query"), std::string::npos);
  EXPECT_NE(text.find("scan sales"), std::string::npos);
  EXPECT_NE(text.find("hash aggregate"), std::string::npos);
  EXPECT_NE(text.find("total (incl. query-level work)"), std::string::npos);
}

// --- parallel executor: native output == serial output -----------------

void ExpectBatchesIdentical(const Batch& a, const Batch& b) {
  ASSERT_EQ(a.columns.size(), b.columns.size());
  EXPECT_EQ(a.names, b.names);
  EXPECT_EQ(a.rows(), b.rows());
  for (size_t c = 0; c < a.columns.size(); ++c) {
    EXPECT_EQ(a.columns[c].type, b.columns[c].type) << a.names[c];
    EXPECT_EQ(a.columns[c].ints, b.columns[c].ints) << a.names[c];
    EXPECT_EQ(a.columns[c].doubles, b.columns[c].doubles) << a.names[c];
    EXPECT_EQ(a.columns[c].strings, b.columns[c].strings) << a.names[c];
  }
}

// ExecTest with a second context in native mode at 4 workers and a tiny
// morsel target, so even the 1000-row fixture fans out across many
// morsels/chunks. Output must be bitwise identical to the default serial
// context: same row order, same group order, same strings.
class ParallelExecTest : public ExecTest {
 protected:
  ParallelExecTest() {
    QueryContext::Options opts;
    opts.exec_mode = ExecMode::kNative;
    opts.exec_workers = 4;
    opts.morsel_rows = 64;
    par_ctx_ = std::make_unique<QueryContext>(txn_mgr_.get(), txn_,
                                              &h_.system, opts);
  }

  std::unique_ptr<QueryContext> par_ctx_;
};

TEST_F(ParallelExecTest, FullScanMatchesSerial) {
  Result<TableReader> r1 = ctx_->OpenTable(10);
  Result<TableReader> r2 = par_ctx_->OpenTable(10);
  ASSERT_TRUE(r1.ok() && r2.ok());
  std::vector<std::string> cols = {"id", "region_id", "amount", "day",
                                   "note"};
  Result<Batch> serial = ScanTable(ctx_.get(), &*r1, cols);
  Result<Batch> parallel = ScanTable(par_ctx_.get(), &*r2, cols);
  ASSERT_TRUE(serial.ok() && parallel.ok());
  EXPECT_EQ(parallel->rows(), 1000u);
  ExpectBatchesIdentical(*serial, *parallel);
}

TEST_F(ParallelExecTest, RangeScanMatchesSerial) {
  Result<TableReader> r1 = ctx_->OpenTable(10);
  Result<TableReader> r2 = par_ctx_->OpenTable(10);
  ASSERT_TRUE(r1.ok() && r2.ok());
  ScanRange range{"day", 10, 19};
  Result<Batch> serial = ScanTable(ctx_.get(), &*r1, {"id", "note"}, range);
  Result<Batch> parallel =
      ScanTable(par_ctx_.get(), &*r2, {"id", "note"}, range);
  ASSERT_TRUE(serial.ok() && parallel.ok());
  EXPECT_EQ(parallel->rows(), 100u);
  ExpectBatchesIdentical(*serial, *parallel);
}

TEST_F(ParallelExecTest, HashJoinMatchesSerial) {
  Result<TableReader> s1 = ctx_->OpenTable(10);
  Result<TableReader> g1 = ctx_->OpenTable(11);
  ASSERT_TRUE(s1.ok() && g1.ok());
  Result<Batch> s = ScanTable(ctx_.get(), &*s1, {"id", "region_id"});
  Result<Batch> g =
      ScanTable(ctx_.get(), &*g1, {"region_id", "region_name"});
  ASSERT_TRUE(s.ok() && g.ok());
  for (JoinType type :
       {JoinType::kInner, JoinType::kLeftSemi, JoinType::kLeftAnti}) {
    Result<Batch> serial = HashJoin(ctx_.get(), *s, "region_id", *g,
                                    "region_id", type);
    Result<Batch> parallel = HashJoin(par_ctx_.get(), *s, "region_id", *g,
                                      "region_id", type);
    ASSERT_TRUE(serial.ok() && parallel.ok());
    ExpectBatchesIdentical(*serial, *parallel);
  }
}

TEST_F(ParallelExecTest, StringKeyJoinMatchesSerial) {
  Result<TableReader> sales = ctx_->OpenTable(10);
  ASSERT_TRUE(sales.ok());
  Result<Batch> s = ScanTable(ctx_.get(), &*sales, {"id", "note"});
  ASSERT_TRUE(s.ok());
  Batch right;
  right.AddColumn("note", {ColumnType::kString, {}, {}, {}});
  right.AddColumn("weight", {ColumnType::kInt64, {}, {}, {}});
  right.columns[0].strings = {"promo sale"};
  right.columns[1].ints = {9};
  Result<Batch> serial =
      HashJoin(ctx_.get(), *s, "note", right, "note", JoinType::kInner);
  Result<Batch> parallel = HashJoin(par_ctx_.get(), *s, "note", right,
                                    "note", JoinType::kInner);
  ASSERT_TRUE(serial.ok() && parallel.ok());
  ExpectBatchesIdentical(*serial, *parallel);
}

TEST_F(ParallelExecTest, HashAggregateMatchesSerial) {
  Result<TableReader> sales = ctx_->OpenTable(10);
  ASSERT_TRUE(sales.ok());
  Result<Batch> s =
      ScanTable(ctx_.get(), &*sales, {"region_id", "amount", "id"});
  ASSERT_TRUE(s.ok());
  std::vector<AggSpec> aggs = {{AggOp::kCount, "", "n"},
                               {AggOp::kSum, "amount", "total"},
                               {AggOp::kMin, "id", "min_id"},
                               {AggOp::kMax, "id", "max_id"},
                               {AggOp::kAvg, "amount", "avg_amount"}};
  Result<Batch> serial = HashAggregate(ctx_.get(), *s, {"region_id"}, aggs);
  Result<Batch> parallel =
      HashAggregate(par_ctx_.get(), *s, {"region_id"}, aggs);
  ASSERT_TRUE(serial.ok() && parallel.ok());
  // Group order is first-occurrence order in both modes; sums over the
  // decimal column are integer-exact, so even doubles match bitwise.
  ExpectBatchesIdentical(*serial, *parallel);
}

TEST_F(ParallelExecTest, GlobalAggregateMatchesSerial) {
  Result<TableReader> sales = ctx_->OpenTable(10);
  ASSERT_TRUE(sales.ok());
  Result<Batch> s = ScanTable(ctx_.get(), &*sales, {"amount"});
  ASSERT_TRUE(s.ok());
  std::vector<AggSpec> aggs = {{AggOp::kCount, "", "n"},
                               {AggOp::kSum, "amount", "total"}};
  Result<Batch> serial = HashAggregate(ctx_.get(), *s, {}, aggs);
  Result<Batch> parallel = HashAggregate(par_ctx_.get(), *s, {}, aggs);
  ASSERT_TRUE(serial.ok() && parallel.ok());
  ExpectBatchesIdentical(*serial, *parallel);
}

TEST_F(ExecTest, UnattributedWorkStaysOffQueryLedgers) {
  CostLedger& ledger = h_.env.telemetry().ledger();
  uint64_t query_id = ledger.NextQueryId();
  ctx_->SetAttribution(query_id, "scoped");
  // No ScopedQueryAttribution installed: operator scopes still narrow the
  // context, but outside them the default (query 0) is current.
  Result<TableReader> sales = ctx_->OpenTable(10);
  ASSERT_TRUE(sales.ok());
  Result<Batch> s = ScanTable(ctx_.get(), &*sales, {"id"});
  ASSERT_TRUE(s.ok());

  // The scan ran inside an OperatorScope built from the query's
  // attribution, so its work is still charged to the query...
  EXPECT_GT(ledger.QueryTotal(query_id).sim_seconds, 0);
  // ...but nothing leaked onto other query ids.
  for (const auto& [key, entry] : ledger.entries()) {
    EXPECT_TRUE(key.query_id == query_id || key.query_id == 0)
        << "unexpected query " << key.query_id;
  }
}

}  // namespace
}  // namespace cloudiq
