#include <gtest/gtest.h>

#include "engine/database.h"
#include "exec/executor.h"

namespace cloudiq {
namespace {

TableSchema SmallSchema() {
  TableSchema schema;
  schema.name = "t";
  schema.table_id = 5;
  schema.columns = {{"k", ColumnType::kInt64},
                    {"v", ColumnType::kString}};
  schema.hg_index_columns = {0};
  return schema;
}

Batch SmallRows(int64_t first, int64_t count) {
  Batch batch;
  batch.AddColumn("k", {ColumnType::kInt64, {}, {}, {}});
  batch.AddColumn("v", {ColumnType::kString, {}, {}, {}});
  for (int64_t i = first; i < first + count; ++i) {
    batch.columns[0].ints.push_back(i);
    batch.columns[1].strings.push_back("value-" + std::to_string(i));
  }
  return batch;
}

Database::Options SmallOptions(UserStorage storage) {
  Database::Options options;
  options.user_storage = storage;
  options.page_size = 8192;
  options.blockmap_fanout = 16;
  return options;
}

void LoadSmallTable(Database* db, int64_t rows) {
  Transaction* txn = db->Begin();
  TableLoader loader = db->NewTableLoader(txn, SmallSchema());
  ASSERT_TRUE(loader.Append(SmallRows(0, rows).columns).ok());
  ASSERT_TRUE(loader.Finish(db->system()).ok());
  ASSERT_TRUE(db->Commit(txn).ok());
}

int64_t CountRows(Database* db) {
  Transaction* txn = db->Begin();
  QueryContext ctx(&db->txn_mgr(), txn, db->system());
  Result<TableReader> reader = ctx.OpenTable(5);
  EXPECT_TRUE(reader.ok());
  Result<Batch> batch = ScanTable(&ctx, &*reader, {"k", "v"});
  EXPECT_TRUE(batch.ok()) << batch.status().ToString();
  int64_t rows = static_cast<int64_t>(batch->rows());
  for (size_t r = 0; r < batch->rows(); ++r) {
    EXPECT_EQ(batch->Str("v", r),
              "value-" + std::to_string(batch->Int("k", r)));
  }
  EXPECT_TRUE(db->Commit(txn).ok());
  return rows;
}

class DatabaseStorageTest
    : public ::testing::TestWithParam<UserStorage> {};

TEST_P(DatabaseStorageTest, LoadQueryRoundTrip) {
  SimEnvironment env;
  Database db(&env, InstanceProfile::M5ad4xlarge(),
              SmallOptions(GetParam()));
  LoadSmallTable(&db, 2000);
  EXPECT_EQ(CountRows(&db), 2000);
  EXPECT_GT(db.UserBytesAtRest(), 0u);
  EXPECT_GT(db.node().clock().now(), 0.0);
}

TEST_P(DatabaseStorageTest, CrashRecoveryPreservesCommittedData) {
  SimEnvironment env;
  Database db(&env, InstanceProfile::M5ad4xlarge(),
              SmallOptions(GetParam()));
  LoadSmallTable(&db, 1500);
  ASSERT_TRUE(db.Checkpoint().ok());
  ASSERT_TRUE(db.CrashAndRecover().ok());
  EXPECT_EQ(CountRows(&db), 1500);
}

INSTANTIATE_TEST_SUITE_P(
    Backends, DatabaseStorageTest,
    ::testing::Values(UserStorage::kObjectStore, UserStorage::kEbs,
                      UserStorage::kEfs),
    [](const ::testing::TestParamInfo<UserStorage>& info) {
      switch (info.param) {
        case UserStorage::kObjectStore: return "S3";
        case UserStorage::kEbs: return "EBS";
        case UserStorage::kEfs: return "EFS";
      }
      return "unknown";
    });

TEST(DatabaseTest, OcmWiredForCloudStorage) {
  SimEnvironment env;
  Database db(&env, InstanceProfile::M5ad4xlarge(),
              SmallOptions(UserStorage::kObjectStore));
  ASSERT_NE(db.ocm(), nullptr);
  LoadSmallTable(&db, 2000);
  // Load wrote through the OCM (write-back during churn, write-through
  // at commit, or promotions at FlushForCommit).
  EXPECT_GT(db.ocm()->stats().background_uploads +
                db.ocm()->stats().write_through +
                db.ocm()->stats().commit_promotions,
            0u);
  // Reads hit the OCM cache after the load.
  CountRows(&db);
  EXPECT_GT(db.ocm()->stats().hits + db.ocm()->stats().misses, 0u);
}

TEST(DatabaseTest, OcmDisabledStillCorrect) {
  SimEnvironment env;
  Database::Options options = SmallOptions(UserStorage::kObjectStore);
  options.enable_ocm = false;
  Database db(&env, InstanceProfile::M5ad4xlarge(), options);
  EXPECT_EQ(db.ocm(), nullptr);
  LoadSmallTable(&db, 1000);
  EXPECT_EQ(CountRows(&db), 1000);
}

TEST(DatabaseTest, EncryptionTransparentEndToEnd) {
  SimEnvironment env;
  Database::Options options = SmallOptions(UserStorage::kObjectStore);
  options.encrypt_pages = true;
  Database db(&env, InstanceProfile::M5ad4xlarge(), options);
  LoadSmallTable(&db, 1000);
  EXPECT_EQ(CountRows(&db), 1000);
}

TEST(DatabaseTest, NeverWriteTwiceHeldAcrossWholeLifecycle) {
  SimEnvironment env;
  Database db(&env, InstanceProfile::M5ad4xlarge(),
              SmallOptions(UserStorage::kObjectStore));
  LoadSmallTable(&db, 3000);
  CountRows(&db);
  ASSERT_TRUE(db.Checkpoint().ok());
  ASSERT_TRUE(db.CrashAndRecover().ok());
  CountRows(&db);
  // Only the snapshot manager's metadata object is ever overwritten; no
  // *page* object is written twice. The metadata key is not a page.
  EXPECT_LE(env.object_store().stats().overwrites, 2u);
  EXPECT_EQ(env.object_store().stats().stale_reads, 0u);
}

TEST(DatabaseSnapshotTest, SnapshotAndRestoreViaFacade) {
  SimEnvironment env;
  Database db(&env, InstanceProfile::M5ad4xlarge(),
              SmallOptions(UserStorage::kObjectStore));
  LoadSmallTable(&db, 800);

  Result<SnapshotManager::SnapshotInfo> snap = db.TakeSnapshot();
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  EXPECT_LT(snap->duration_seconds, 2.0);

  // Post-snapshot table; must vanish after restore.
  TableSchema extra = SmallSchema();
  extra.table_id = 6;
  extra.name = "extra";
  Transaction* txn = db.Begin();
  TableLoader loader = db.NewTableLoader(txn, extra);
  ASSERT_TRUE(loader.Append(SmallRows(0, 500).columns).ok());
  ASSERT_TRUE(loader.Finish(db.system()).ok());
  ASSERT_TRUE(db.Commit(txn).ok());
  // Table 6's partition-0/column-0 storage object is in the catalog.
  uint64_t extra_object = TableLoader::ObjectIdFor(6, 0, 0);
  EXPECT_TRUE(db.txn_mgr().catalog().Contains(extra_object));
  EXPECT_TRUE(db.system()->Contains("tablemeta/6"));

  ASSERT_TRUE(db.RestoreSnapshot(snap->id).ok());
  EXPECT_FALSE(db.txn_mgr().catalog().Contains(extra_object));
  EXPECT_FALSE(db.system()->Contains("tablemeta/6"));
  EXPECT_EQ(CountRows(&db), 800);
}

TEST(DatabaseSnapshotTest, CloudSnapshotsSmallerThanBlockSnapshots) {
  // On a cloud-dbspace database only the system dbspace is backed up; a
  // conventional database must back up the whole user volume too.
  SimEnvironment env_cloud;
  Database cloud(&env_cloud, InstanceProfile::M5ad4xlarge(),
                 SmallOptions(UserStorage::kObjectStore));
  LoadSmallTable(&cloud, 3000);
  Result<SnapshotManager::SnapshotInfo> cloud_snap = cloud.TakeSnapshot();
  ASSERT_TRUE(cloud_snap.ok());

  SimEnvironment env_ebs;
  Database ebs(&env_ebs, InstanceProfile::M5ad4xlarge(),
               SmallOptions(UserStorage::kEbs));
  LoadSmallTable(&ebs, 3000);
  Result<SnapshotManager::SnapshotInfo> ebs_snap = ebs.TakeSnapshot();
  ASSERT_TRUE(ebs_snap.ok());

  EXPECT_LT(cloud_snap->backup_bytes, ebs_snap->backup_bytes);
}

TEST(DatabaseTest, CrashRecoveryCollectsOrphanObjects) {
  SimEnvironment env;
  Database db(&env, InstanceProfile::M5ad4xlarge(),
              SmallOptions(UserStorage::kObjectStore));
  LoadSmallTable(&db, 1000);
  ASSERT_TRUE(db.Checkpoint().ok());
  uint64_t committed_live = env.object_store().LiveObjectCount();

  // In-flight load big enough to force churn flushes, then crash.
  TableSchema doomed = SmallSchema();
  doomed.table_id = 9;
  doomed.name = "doomed";
  Transaction* txn = db.Begin();
  TableLoader loader = db.NewTableLoader(txn, doomed);
  // The buffer is large (half of 64 GB), so force uploads by committing
  // through the OCM write queue instead: use many batches and flush.
  ASSERT_TRUE(loader.Append(SmallRows(0, 5000).columns).ok());
  ASSERT_TRUE(loader.Finish(db.system()).ok());
  // Flush dirty pages to storage but crash *before* Commit writes the
  // commit record.
  ASSERT_TRUE(db.txn_mgr().buffer().FlushTxn(txn->id).ok());
  EXPECT_GT(env.object_store().LiveObjectCount(), committed_live);

  ASSERT_TRUE(db.CrashAndRecover().ok());
  // The orphans are gone (keygen active-set polling GC).
  EXPECT_EQ(env.object_store().LiveObjectCount(), committed_live);
  EXPECT_FALSE(db.txn_mgr().catalog().Contains(9));
  EXPECT_EQ(CountRows(&db), 1000);
}

}  // namespace
}  // namespace cloudiq
