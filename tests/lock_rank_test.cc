// Tests for the runtime lock-rank tripwire (src/common/mutex.h, ranks
// from the generated src/common/lock_ranks.h): inversion detection with
// the held stack in the message, TryLock coverage, the MutexUnlock and
// ScopedLockRankBypass interplay, unranked-mutex invisibility — plus
// Mutex::TryLock semantics, contended-acquire counting, and the
// guarantee that the wall-clock contention counter never leaks into the
// deterministic run report.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/lock_ranks.h"
#include "common/mutex.h"
#include "telemetry/attribution.h"
#include "telemetry/report.h"
#include "telemetry/stall_profiler.h"
#include "telemetry/stats.h"

namespace cloudiq {
namespace {

// Installs a capturing failure handler for the test's duration so a
// deliberate inversion is observed, not fatal (no death-test machinery —
// TSan and fork() disagree).
class LockRankTripwireTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!LockRankObserver::Enabled()) {
      GTEST_SKIP() << "CLOUDIQ_LOCK_RANK_CHECK=0 in the environment";
    }
    prev_ = LockRankObserver::InstallFailureHandler(
        [this](const std::string& message) {
          failures_.push_back(message);
        });
  }

  void TearDown() override {
    LockRankObserver::InstallFailureHandler(std::move(prev_));
  }

  std::vector<std::string> failures_;
  LockRankObserver::FailureHandler prev_;
};

TEST_F(LockRankTripwireTest, AscendingAcquisitionIsSilent) {
  Mutex engine(lockrank::kWorkloadEngine);  // rank 10
  Mutex store(lockrank::kSimObjectStore);   // rank 70
  Mutex tracer(lockrank::kTracer);          // rank 93
  {
    MutexLock a(&engine);
    MutexLock b(&store);
    MutexLock c(&tracer);
    EXPECT_EQ(LockRankObserver::HeldStack().size(), 3u);
  }
  EXPECT_TRUE(failures_.empty());
  EXPECT_TRUE(LockRankObserver::HeldStack().empty());
}

TEST_F(LockRankTripwireTest, InvertedAcquisitionTrips) {
  Mutex tracer(lockrank::kTracer);          // rank 93
  Mutex engine(lockrank::kWorkloadEngine);  // rank 10
  {
    MutexLock a(&tracer);
    MutexLock b(&engine);  // deliberate inversion: 10 while holding 93
  }
  ASSERT_EQ(failures_.size(), 1u);
  EXPECT_NE(failures_[0].find("lock-rank inversion"), std::string::npos);
  EXPECT_NE(failures_[0].find("WorkloadEngine"), std::string::npos);
  EXPECT_NE(failures_[0].find("Tracer"), std::string::npos);
}

TEST_F(LockRankTripwireTest, SameRankTrips) {
  Mutex a(lockrank::kBufferManager);
  Mutex b(lockrank::kBufferManager);
  {
    MutexLock la(&a);
    MutexLock lb(&b);  // equal rank is not strictly ascending
  }
  ASSERT_EQ(failures_.size(), 1u);
  EXPECT_NE(failures_[0].find("BufferManager"), std::string::npos);
}

TEST_F(LockRankTripwireTest, TryLockIsCheckedToo) {
  Mutex tracer(lockrank::kTracer);
  Mutex engine(lockrank::kWorkloadEngine);
  MutexLock a(&tracer);
  bool acquired = engine.TryLock();
  EXPECT_TRUE(acquired);
  ASSERT_EQ(failures_.size(), 1u);
  EXPECT_NE(failures_[0].find("lock-rank inversion"), std::string::npos);
  if (acquired) engine.Unlock();
}

TEST_F(LockRankTripwireTest, BypassSuppressesChecking) {
  Mutex a(lockrank::kObjectKeyGenerator);
  Mutex b(lockrank::kObjectKeyGenerator);
  {
    ScopedLockRankBypass bypass;
    MutexLock la(&a);
    MutexLock lb(&b);  // same-rank sibling instance, as in move-assign
    EXPECT_EQ(LockRankObserver::HeldStack().size(), 2u);
  }
  EXPECT_TRUE(failures_.empty());
  // The bypass is scoped: the same pattern trips once it is gone.
  {
    MutexLock la(&a);
    MutexLock lb(&b);
  }
  EXPECT_EQ(failures_.size(), 1u);
}

TEST_F(LockRankTripwireTest, UnrankedMutexIsInvisible) {
  Mutex tracer(lockrank::kTracer);
  Mutex plain;  // rank 0: test/bench locks stay out of the model
  {
    MutexLock a(&tracer);
    MutexLock b(&plain);  // "descending" onto rank 0: ignored
    EXPECT_EQ(LockRankObserver::HeldStack().size(), 1u);
  }
  EXPECT_TRUE(failures_.empty());
}

TEST_F(LockRankTripwireTest, MutexUnlockRemovesFromHeldStack) {
  Mutex tracer(lockrank::kTracer);          // rank 93
  Mutex engine(lockrank::kWorkloadEngine);  // rank 10
  MutexLock a(&tracer);
  {
    MutexUnlock drop(&tracer);
    // With the deep lock dropped, taking the shallow one is legal.
    MutexLock b(&engine);
    EXPECT_EQ(LockRankObserver::HeldStack().size(), 1u);
  }
  EXPECT_TRUE(failures_.empty());
  EXPECT_EQ(LockRankObserver::HeldStack().size(), 1u);
}

TEST(LockRankTableTest, RankNamesMatchManifest) {
  EXPECT_STREQ(lockrank::RankName(lockrank::kWorkloadEngine),
               "WorkloadEngine");
  EXPECT_STREQ(lockrank::RankName(lockrank::kBufferManager),
               "BufferManager");
  EXPECT_STREQ(lockrank::RankName(lockrank::kTracer), "Tracer");
  EXPECT_STREQ(lockrank::RankName(0), "unranked");
  EXPECT_STREQ(lockrank::RankName(-7), "unranked");
  // The layering the ranks encode: engine above workload controllers,
  // above storage, above the sim store, above telemetry leaves.
  EXPECT_LT(lockrank::kWorkloadEngine, lockrank::kAdmissionController);
  EXPECT_LT(lockrank::kAdmissionController, lockrank::kBufferManager);
  EXPECT_LT(lockrank::kBufferManager, lockrank::kSimObjectStore);
  EXPECT_LT(lockrank::kSimObjectStore, lockrank::kStallProfiler);
}

// --- Mutex::TryLock and the contention counter ---------------------------

TEST(MutexTryLockTest, TryAcquireSemantics) {
  Mutex mu;
  ASSERT_TRUE(mu.TryLock());
  // A second TryLock must fail while held; std::mutex forbids re-try
  // from the owning thread, so probe from another one.
  std::thread prober([&mu] {
    bool acquired = mu.TryLock();
    EXPECT_FALSE(acquired);
    if (acquired) mu.Unlock();
  });
  prober.join();
  mu.Unlock();
  ASSERT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(MutexContentionTest, CountsContendedAcquiresAcrossThreads) {
  Mutex mu;
  const uint64_t before =
      MutexContentionCounter().load(std::memory_order_relaxed);
  mu.Lock();
  std::thread waiter([&mu] {
    mu.Lock();  // guaranteed contended: main holds until it sees the bump
    mu.Unlock();
  });
  while (MutexContentionCounter().load(std::memory_order_relaxed) ==
         before) {
    std::this_thread::yield();
  }
  mu.Unlock();
  waiter.join();
  EXPECT_GE(MutexContentionCounter().load(std::memory_order_relaxed),
            before + 1);
}

TEST(MutexContentionTest, CounterNeverLeaksIntoRunReport) {
  // The counter is wall-clock contention — scheduler-dependent and
  // nondeterministic — so it may appear in --profile stdout but never in
  // the byte-identical --report JSON.
  MutexContentionCounter().fetch_add(3, std::memory_order_relaxed);
  StatsRegistry stats;
  CostLedger ledger;
  StallProfiler profiler(&ledger, /*tracer=*/nullptr);
  RunReportInfo info;
  info.bench = "lock_rank_test";
  std::string json = BuildRunReportJson(info, stats, ledger, profiler);
  EXPECT_EQ(json.find("contention"), std::string::npos);
  EXPECT_EQ(json.find("mutex"), std::string::npos);
}

}  // namespace
}  // namespace cloudiq
