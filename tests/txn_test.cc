#include <gtest/gtest.h>

#include "tests/test_util.h"
#include "txn/page_set.h"
#include "txn/transaction_manager.h"

namespace cloudiq {
namespace {

using testing_util::SingleNodeHarness;

// Harness with a TransactionManager wired to the single-node setup:
// commit notifications flow to the local key generator, exactly as on a
// coordinator node.
class TxnTest : public ::testing::Test {
 protected:
  TxnTest() {
    TransactionManager::Options opts;
    opts.node_id = 0;
    opts.blockmap_fanout = 4;
    opts.buffer_capacity_bytes = 1 << 20;
    txn_mgr_ = std::make_unique<TransactionManager>(h_.storage.get(),
                                                    &h_.system, opts);
    txn_mgr_->set_commit_listener(
        [this](NodeId node, const IntervalSet& keys) {
          h_.keygen.OnTransactionCommitted(node, keys);
        });
  }

  // Loads `n` pages into a new object under one transaction and commits.
  uint64_t LoadObject(uint64_t object_id, int n, uint8_t seed,
                      DbSpace* space) {
    Transaction* txn = txn_mgr_->Begin();
    Result<StorageObject*> obj =
        txn_mgr_->CreateObject(txn, object_id, space);
    EXPECT_TRUE(obj.ok());
    for (int i = 0; i < n; ++i) {
      EXPECT_TRUE(
          (*obj)
              ->AppendPage(h_.MakePayload(512, seed + i))
              .ok());
    }
    EXPECT_TRUE(txn_mgr_->Commit(txn).ok());
    return object_id;
  }

  SingleNodeHarness h_;
  std::unique_ptr<TransactionManager> txn_mgr_;
};

TEST(PageSetTest, SplitsCloudAndBlockByRange) {
  PageSet set;
  set.Add(1, PhysicalLoc::ForCloudKey(kCloudKeyBase + 10));
  set.Add(1, PhysicalLoc::ForCloudKey(kCloudKeyBase + 11));
  set.Add(2, PhysicalLoc::ForBlocks(100, 4));
  EXPECT_EQ(set.cloud_keys().Count(), 2u);
  EXPECT_EQ(set.block_locs().size(), 1u);
  EXPECT_EQ(set.page_count(), 3u);
  Bitmap bm = set.BlockBitmap(2);
  EXPECT_TRUE(bm.Test(100));
  EXPECT_TRUE(bm.Test(103));
  EXPECT_FALSE(bm.Test(104));
  EXPECT_EQ(set.BlockBitmap(1).CountSet(), 0u);
}

TEST(PageSetTest, MonotonicKeysStayCompact) {
  PageSet set;
  for (uint64_t i = 0; i < 10000; ++i) {
    set.Add(1, PhysicalLoc::ForCloudKey(kCloudKeyBase + i));
  }
  // §3.2: monotonic keys let bookkeeping collapse to a single interval.
  EXPECT_EQ(set.cloud_keys().IntervalCount(), 1u);
}

TEST(PageSetTest, SerializeRoundTrip) {
  PageSet set;
  set.Add(1, PhysicalLoc::ForCloudKey(kCloudKeyBase + 5));
  set.Add(3, PhysicalLoc::ForBlocks(7, 2));
  PageSet back = PageSet::Deserialize(set.Serialize());
  EXPECT_TRUE(set == back);
}

TEST_F(TxnTest, CommitPublishesNewVersion) {
  LoadObject(100, 10, 1, h_.cloud_space);
  EXPECT_TRUE(txn_mgr_->catalog().Contains(100));
  Result<IdentityObject> identity = txn_mgr_->catalog().Get(100);
  ASSERT_TRUE(identity.ok());
  EXPECT_EQ(identity->page_count, 10u);

  // A reader sees the committed pages.
  Transaction* reader = txn_mgr_->Begin();
  Result<std::unique_ptr<StorageObject>> obj =
      txn_mgr_->OpenForRead(reader, 100);
  ASSERT_TRUE(obj.ok());
  for (int i = 0; i < 10; ++i) {
    Result<BufferManager::PageData> page = (*obj)->ReadPage(i);
    ASSERT_TRUE(page.ok()) << page.status().ToString();
    EXPECT_EQ(**page, h_.MakePayload(512, 1 + i));
  }
  ASSERT_TRUE(txn_mgr_->Commit(reader).ok());
}

TEST_F(TxnTest, ReadYourOwnWritesBeforeCommit) {
  Transaction* txn = txn_mgr_->Begin();
  Result<StorageObject*> obj =
      txn_mgr_->CreateObject(txn, 7, h_.cloud_space);
  ASSERT_TRUE(obj.ok());
  ASSERT_TRUE((*obj)->AppendPage(h_.MakePayload(256, 5)).ok());
  Result<BufferManager::PageData> page = (*obj)->ReadPage(0);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(**page, h_.MakePayload(256, 5));
  ASSERT_TRUE(txn_mgr_->Commit(txn).ok());
}

TEST_F(TxnTest, SnapshotIsolationReadersSeeOldVersion) {
  LoadObject(50, 4, 10, h_.cloud_space);

  // Reader begins before the writer commits an update.
  Transaction* reader = txn_mgr_->Begin();

  Transaction* writer = txn_mgr_->Begin();
  Result<StorageObject*> wobj = txn_mgr_->OpenForWrite(writer, 50);
  ASSERT_TRUE(wobj.ok());
  ASSERT_TRUE((*wobj)->WritePage(0, h_.MakePayload(512, 200)).ok());
  ASSERT_TRUE(txn_mgr_->Commit(writer).ok());

  // The reader's snapshot still resolves page 0 to the old version.
  Result<std::unique_ptr<StorageObject>> robj =
      txn_mgr_->OpenForRead(reader, 50);
  ASSERT_TRUE(robj.ok());
  Result<BufferManager::PageData> old_page = (*robj)->ReadPage(0);
  ASSERT_TRUE(old_page.ok()) << old_page.status().ToString();
  EXPECT_EQ(**old_page, h_.MakePayload(512, 10));
  ASSERT_TRUE(txn_mgr_->Commit(reader).ok());

  // A new reader sees the update.
  Transaction* fresh = txn_mgr_->Begin();
  Result<std::unique_ptr<StorageObject>> fobj =
      txn_mgr_->OpenForRead(fresh, 50);
  ASSERT_TRUE(fobj.ok());
  EXPECT_EQ((*(*fobj)->ReadPage(0).value())[0], h_.MakePayload(512, 200)[0]);
  ASSERT_TRUE(txn_mgr_->Commit(fresh).ok());
}

TEST_F(TxnTest, GcDeletesSupersededVersionsAfterReadersFinish) {
  LoadObject(60, 8, 0, h_.cloud_space);
  uint64_t objects_v1 = h_.env.object_store().LiveObjectCount();

  Transaction* reader = txn_mgr_->Begin();  // pins version 1

  Transaction* writer = txn_mgr_->Begin();
  Result<StorageObject*> wobj = txn_mgr_->OpenForWrite(writer, 60);
  ASSERT_TRUE(wobj.ok());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE((*wobj)->WritePage(i, h_.MakePayload(512, 100 + i)).ok());
  }
  ASSERT_TRUE(txn_mgr_->Commit(writer).ok());

  // Both versions coexist while the reader is active.
  EXPECT_GT(h_.env.object_store().LiveObjectCount(), objects_v1);
  EXPECT_GE(txn_mgr_->committed_chain_length(), 1u);

  ASSERT_TRUE(txn_mgr_->Commit(reader).ok());
  ASSERT_TRUE(txn_mgr_->RunGarbageCollection().ok());

  // Old data pages are gone; live count returns to ~version-2 footprint.
  EXPECT_LE(h_.env.object_store().LiveObjectCount(), objects_v1 + 2);
  EXPECT_EQ(txn_mgr_->committed_chain_length(), 0u);
  EXPECT_GT(txn_mgr_->stats().gc_pages_deleted, 0u);

  // Version 2 remains fully readable after GC.
  Transaction* check = txn_mgr_->Begin();
  Result<std::unique_ptr<StorageObject>> obj =
      txn_mgr_->OpenForRead(check, 60);
  ASSERT_TRUE(obj.ok());
  for (int i = 0; i < 8; ++i) {
    Result<BufferManager::PageData> page = (*obj)->ReadPage(i);
    ASSERT_TRUE(page.ok()) << "page " << i;
    EXPECT_EQ(**page, h_.MakePayload(512, 100 + i));
  }
  ASSERT_TRUE(txn_mgr_->Commit(check).ok());
}

TEST_F(TxnTest, GcLeavesExactlyReachableObjects) {
  // After load + update + GC with no active readers, the object store
  // holds exactly the reachable set: data pages + blockmap nodes of the
  // latest version (completeness: no leaks, no dangling).
  LoadObject(70, 6, 0, h_.cloud_space);
  Transaction* writer = txn_mgr_->Begin();
  Result<StorageObject*> wobj = txn_mgr_->OpenForWrite(writer, 70);
  ASSERT_TRUE(wobj.ok());
  for (int i = 0; i < 6; i += 2) {
    ASSERT_TRUE((*wobj)->WritePage(i, h_.MakePayload(512, 50 + i)).ok());
  }
  ASSERT_TRUE(txn_mgr_->Commit(writer).ok());
  ASSERT_TRUE(txn_mgr_->RunGarbageCollection().ok());

  // Collect the reachable set from the committed catalog.
  Transaction* probe = txn_mgr_->Begin();
  Result<std::unique_ptr<StorageObject>> obj =
      txn_mgr_->OpenForRead(probe, 70);
  ASSERT_TRUE(obj.ok());
  std::vector<PhysicalLoc> nodes, pages;
  ASSERT_TRUE((*obj)->blockmap().CollectReachable(&nodes, &pages).ok());
  ASSERT_TRUE(txn_mgr_->Commit(probe).ok());

  EXPECT_EQ(h_.env.object_store().LiveObjectCount(),
            nodes.size() + pages.size());
}

TEST_F(TxnTest, RollbackDeletesAllocationsImmediately) {
  Transaction* txn = txn_mgr_->Begin();
  Result<StorageObject*> obj =
      txn_mgr_->CreateObject(txn, 80, h_.cloud_space);
  ASSERT_TRUE(obj.ok());
  // Enough volume to overflow the 1 MB buffer: churn flushes upload real
  // objects before the rollback.
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE((*obj)->AppendPage(h_.MakePayload(4096, 1)).ok());
  }
  EXPECT_GT(h_.env.object_store().LiveObjectCount(), 0u);
  ASSERT_TRUE(txn_mgr_->Rollback(txn).ok());
  EXPECT_EQ(h_.env.object_store().LiveObjectCount(), 0u);
  EXPECT_FALSE(txn_mgr_->catalog().Contains(80));
  // Rollback did NOT notify the coordinator: active set unchanged.
  EXPECT_FALSE(h_.keygen.ActiveSet(0).empty());
}

TEST_F(TxnTest, CommitNotifiesCoordinatorActiveSet) {
  LoadObject(90, 4, 0, h_.cloud_space);
  // All consumed keys left the active set at commit; only unconsumed
  // cached-range keys remain.
  const IntervalSet& active = h_.keygen.ActiveSet(0);
  Result<IdentityObject> identity = txn_mgr_->catalog().Get(90);
  ASSERT_TRUE(identity.ok());
  EXPECT_FALSE(active.Contains(identity->root.cloud_key()));
}

TEST_F(TxnTest, BlockDbSpaceCommitAndFreelistReuse) {
  LoadObject(110, 10, 0, h_.block_space);
  uint64_t used_v1 = h_.block_space->freelist.UsedBlocks();
  EXPECT_GT(used_v1, 0u);

  Transaction* writer = txn_mgr_->Begin();
  Result<StorageObject*> wobj = txn_mgr_->OpenForWrite(writer, 110);
  ASSERT_TRUE(wobj.ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE((*wobj)->WritePage(i, h_.MakePayload(512, 77)).ok());
  }
  ASSERT_TRUE(txn_mgr_->Commit(writer).ok());
  ASSERT_TRUE(txn_mgr_->RunGarbageCollection().ok());

  // Old blocks freed: usage did not double.
  EXPECT_LT(h_.block_space->freelist.UsedBlocks(), 2 * used_v1);

  Transaction* check = txn_mgr_->Begin();
  Result<std::unique_ptr<StorageObject>> obj =
      txn_mgr_->OpenForRead(check, 110);
  ASSERT_TRUE(obj.ok());
  EXPECT_EQ((*(*obj)->ReadPage(3).value())[0], h_.MakePayload(512, 77)[0]);
  ASSERT_TRUE(txn_mgr_->Commit(check).ok());
}

TEST_F(TxnTest, ChurnEvictionUnderSmallBufferStillCommitsCorrectly) {
  // Buffer capacity 1 MB; 6 MB of dirty pages force heavy churn-phase
  // eviction (write-back) before commit (write-through).
  Transaction* txn = txn_mgr_->Begin();
  Result<StorageObject*> obj =
      txn_mgr_->CreateObject(txn, 120, h_.cloud_space);
  ASSERT_TRUE(obj.ok());
  const int kPages = 1536;
  for (int i = 0; i < kPages; ++i) {
    ASSERT_TRUE(
        (*obj)
            ->AppendPage(h_.MakePayload(4096, static_cast<uint8_t>(i)))
            .ok());
  }
  EXPECT_GT(txn_mgr_->buffer().stats().churn_flushes, 0u);
  ASSERT_TRUE(txn_mgr_->Commit(txn).ok());

  Transaction* reader = txn_mgr_->Begin();
  Result<std::unique_ptr<StorageObject>> robj =
      txn_mgr_->OpenForRead(reader, 120);
  ASSERT_TRUE(robj.ok());
  for (int i = 0; i < kPages; i += 97) {
    Result<BufferManager::PageData> page = (*robj)->ReadPage(i);
    ASSERT_TRUE(page.ok()) << "page " << i;
    EXPECT_EQ(**page, h_.MakePayload(4096, static_cast<uint8_t>(i)));
  }
  ASSERT_TRUE(txn_mgr_->Commit(reader).ok());
}

TEST_F(TxnTest, DropObjectCollectsEverything) {
  LoadObject(130, 12, 0, h_.cloud_space);
  uint64_t live_before = h_.env.object_store().LiveObjectCount();
  EXPECT_GT(live_before, 0u);

  Transaction* txn = txn_mgr_->Begin();
  ASSERT_TRUE(txn_mgr_->DropObject(txn, 130).ok());
  ASSERT_TRUE(txn_mgr_->Commit(txn).ok());
  ASSERT_TRUE(txn_mgr_->RunGarbageCollection().ok());
  EXPECT_EQ(h_.env.object_store().LiveObjectCount(), 0u);
  EXPECT_FALSE(txn_mgr_->catalog().Contains(130));
}

TEST_F(TxnTest, CrashRecoveryRestoresCommittedState) {
  LoadObject(140, 6, 3, h_.cloud_space);
  LoadObject(141, 4, 8, h_.block_space);
  ASSERT_TRUE(txn_mgr_->Checkpoint().ok());

  // More work after the checkpoint (must be recovered via log replay).
  Transaction* writer = txn_mgr_->Begin();
  Result<StorageObject*> wobj = txn_mgr_->OpenForWrite(writer, 140);
  ASSERT_TRUE(wobj.ok());
  ASSERT_TRUE((*wobj)->WritePage(2, h_.MakePayload(512, 222)).ok());
  ASSERT_TRUE(txn_mgr_->Commit(writer).ok());

  // An in-flight transaction dies with the node.
  Transaction* doomed = txn_mgr_->Begin();
  Result<StorageObject*> dobj =
      txn_mgr_->CreateObject(doomed, 999, h_.cloud_space);
  ASSERT_TRUE(dobj.ok());
  ASSERT_TRUE((*dobj)->AppendPage(h_.MakePayload(512, 1)).ok());

  txn_mgr_->SimulateCrash();
  ASSERT_TRUE(txn_mgr_->RecoverAfterCrash().ok());

  // Committed state is back; the doomed object never existed.
  EXPECT_TRUE(txn_mgr_->catalog().Contains(140));
  EXPECT_TRUE(txn_mgr_->catalog().Contains(141));
  EXPECT_FALSE(txn_mgr_->catalog().Contains(999));

  Transaction* reader = txn_mgr_->Begin();
  Result<std::unique_ptr<StorageObject>> obj =
      txn_mgr_->OpenForRead(reader, 140);
  ASSERT_TRUE(obj.ok());
  EXPECT_EQ((*(*obj)->ReadPage(2).value())[0], h_.MakePayload(512, 222)[0]);
  EXPECT_EQ((*(*obj)->ReadPage(0).value())[0], h_.MakePayload(512, 3)[0]);
  Result<std::unique_ptr<StorageObject>> obj2 =
      txn_mgr_->OpenForRead(reader, 141);
  ASSERT_TRUE(obj2.ok());
  EXPECT_EQ((*(*obj2)->ReadPage(1).value())[0], h_.MakePayload(512, 9)[0]);
  ASSERT_TRUE(txn_mgr_->Commit(reader).ok());
}

TEST_F(TxnTest, CrashRecoveryThenKeygenPollingCleansOrphans) {
  // The full §3.3 story: a node crashes with an in-flight transaction
  // whose pages hit the object store; recovery GC polls the node's
  // active set and deletes the orphans.
  LoadObject(150, 4, 0, h_.cloud_space);
  ASSERT_TRUE(txn_mgr_->RunGarbageCollection().ok());
  uint64_t live_committed = h_.env.object_store().LiveObjectCount();

  Transaction* doomed = txn_mgr_->Begin();
  Result<StorageObject*> dobj =
      txn_mgr_->CreateObject(doomed, 151, h_.cloud_space);
  ASSERT_TRUE(dobj.ok());
  // Enough pages to overflow the 1 MB buffer -> churn flushes upload
  // orphan objects.
  for (int i = 0; i < 600; ++i) {
    ASSERT_TRUE((*dobj)->AppendPage(h_.MakePayload(4096, 1)).ok());
  }
  EXPECT_GT(h_.env.object_store().LiveObjectCount(), live_committed);

  txn_mgr_->SimulateCrash();
  ASSERT_TRUE(txn_mgr_->RecoverAfterCrash().ok());

  // Writer-restart GC: poll every key in the node's active set and
  // delete survivors (Table 1, clock 150).
  IntervalSet to_poll = h_.keygen.TakeActiveSetForRecovery(0);
  EXPECT_FALSE(to_poll.empty());
  for (uint64_t key : to_poll.Values()) {
    SimTime done = 0;
    if (h_.storage->object_io().Exists(key, h_.node->clock().now(),
                                       &done)) {
      ASSERT_TRUE(h_.storage->object_io()
                      .Delete(key, h_.node->clock().now(), &done)
                      .ok());
    }
    h_.node->clock().AdvanceTo(done);
  }
  EXPECT_EQ(h_.env.object_store().LiveObjectCount(), live_committed);

  // Committed data still reads back.
  Transaction* reader = txn_mgr_->Begin();
  Result<std::unique_ptr<StorageObject>> obj =
      txn_mgr_->OpenForRead(reader, 150);
  ASSERT_TRUE(obj.ok());
  EXPECT_TRUE((*obj)->ReadPage(3).ok());
  ASSERT_TRUE(txn_mgr_->Commit(reader).ok());
}

TEST_F(TxnTest, PrefetchAcceleratesScan) {
  LoadObject(160, 64, 0, h_.cloud_space);
  Transaction* reader = txn_mgr_->Begin();
  Result<std::unique_ptr<StorageObject>> obj =
      txn_mgr_->OpenForRead(reader, 160);
  ASSERT_TRUE(obj.ok());
  SimTime before = h_.node->clock().now();
  ASSERT_TRUE((*obj)->PrefetchAll().ok());
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE((*obj)->ReadPage(i).ok());
  }
  double with_prefetch = h_.node->clock().now() - before;
  // 64 serial object-store reads would cost >= 64 * 12 ms ≈ 0.77 s; the
  // remaining cost here is the one-time serial faulting of blockmap nodes
  // (fanout 4 -> ~21 nodes).
  EXPECT_LT(with_prefetch, 0.6);
  ASSERT_TRUE(txn_mgr_->Commit(reader).ok());
}

}  // namespace
}  // namespace cloudiq
