// Tests for the wait-state stall profiler: integer-nanosecond charges,
// scope residuals, parallel-lane scaling, background shadow time, frame
// isolation, and above all the conservation invariant — the sum of every
// entry's classes equals window_nanos + background_nanos exactly.

#include "telemetry/stall_profiler.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "telemetry/attribution.h"

namespace cloudiq {
namespace {

constexpr int64_t kSecond = 1000000000;

AttributionContext Attr(uint64_t query, int32_t op, uint32_t node,
                        std::string tag = "") {
  AttributionContext attr;
  attr.query_id = query;
  attr.operator_id = op;
  attr.node_id = node;
  attr.tag = std::move(tag);
  return attr;
}

int64_t EntrySum(const StallProfiler& profiler) {
  int64_t sum = 0;
  for (const auto& [key, entry] : profiler.entries()) {
    sum += entry.TotalNanos();
  }
  return sum;
}

void ExpectConserved(const StallProfiler& profiler) {
  EXPECT_EQ(EntrySum(profiler),
            profiler.window_nanos() + profiler.background_nanos());
}

TEST(StallProfilerTest, DirectChargeBooksEntryAndWindow) {
  CostLedger ledger;
  StallProfiler profiler(&ledger, /*tracer=*/nullptr);
  {
    ScopedAttribution scope(&ledger, Attr(7, -1, 1, "q"));
    profiler.Charge(WaitClass::kNetworkTransfer, 1.0, 1.25);
  }
  StallProfiler::Entry entry = profiler.QueryTotal(7);
  EXPECT_EQ(entry.ns[static_cast<int>(WaitClass::kNetworkTransfer)],
            kSecond / 4);
  EXPECT_EQ(entry.TotalNanos(), kSecond / 4);
  EXPECT_EQ(entry.background, 0);
  EXPECT_EQ(profiler.window_nanos(), kSecond / 4);
  EXPECT_EQ(profiler.background_nanos(), 0);
  ExpectConserved(profiler);
}

TEST(StallProfilerTest, EmptyAndBackwardWindowsChargeNothing) {
  CostLedger ledger;
  StallProfiler profiler(&ledger, nullptr);
  profiler.Charge(WaitClass::kLockWait, 2.0, 2.0);
  profiler.Charge(WaitClass::kLockWait, 3.0, 2.5);
  EXPECT_TRUE(profiler.entries().empty());
  EXPECT_EQ(profiler.window_nanos(), 0);
}

TEST(StallProfilerTest, ScopeResidualTakesScopeClass) {
  CostLedger ledger;
  StallProfiler profiler(&ledger, nullptr);
  ScopedAttribution scope(&ledger, Attr(3, -1, 1));
  profiler.BeginScope(WaitClass::kCpuExec, 0.0);
  profiler.Charge(WaitClass::kNetworkTransfer, 0.2, 0.45);
  profiler.EndScope(1.0);

  StallProfiler::Entry entry = profiler.QueryTotal(3);
  EXPECT_EQ(entry.ns[static_cast<int>(WaitClass::kNetworkTransfer)],
            kSecond / 4);
  // Unclaimed remainder of the 1s scope: 0.75s of kCpuExec.
  EXPECT_EQ(entry.ns[static_cast<int>(WaitClass::kCpuExec)],
            3 * kSecond / 4);
  EXPECT_EQ(profiler.window_nanos(), kSecond);
  ExpectConserved(profiler);
}

TEST(StallProfilerTest, NestedScopesPropagateElapsedNotResidual) {
  CostLedger ledger;
  StallProfiler profiler(&ledger, nullptr);
  ScopedAttribution scope(&ledger, Attr(5, 2, 1));
  profiler.BeginScope(WaitClass::kCpuExec, 0.0);     // outer: the operator
  profiler.BeginScope(WaitClass::kBufferFill, 0.1);  // inner: a miss fill
  profiler.Charge(WaitClass::kNetworkTransfer, 0.1, 0.3);
  profiler.EndScope(0.5);  // fill residual 0.2s -> kBufferFill
  profiler.EndScope(1.0);  // operator residual 0.5s -> kCpuExec

  StallProfiler::Entry entry = profiler.QueryTotal(5);
  EXPECT_EQ(entry.ns[static_cast<int>(WaitClass::kNetworkTransfer)],
            kSecond / 5);
  EXPECT_EQ(entry.ns[static_cast<int>(WaitClass::kBufferFill)],
            kSecond / 5);
  // Outer scope: 1.0s elapsed minus the inner scope's 0.4s elapsed (the
  // whole inner window counts as claimed, not just its charges).
  EXPECT_EQ(entry.ns[static_cast<int>(WaitClass::kCpuExec)],
            6 * kSecond / 10);
  EXPECT_EQ(entry.TotalNanos(), kSecond);
  EXPECT_EQ(profiler.window_nanos(), kSecond);
  ExpectConserved(profiler);
}

TEST(StallProfilerTest, PinnedResidualSurvivesAttributionChange) {
  CostLedger ledger;
  StallProfiler profiler(&ledger, nullptr);
  {
    ScopedAttribution query(&ledger, Attr(9, -1, 2));
    profiler.BeginScope(WaitClass::kCpuExec, 0.0);
    profiler.PinScopeAttribution();
  }
  // Attribution has been restored to default; the residual must still
  // land on query 9 because the scope pinned it.
  profiler.EndScope(2.0);
  StallProfiler::Entry entry = profiler.QueryTotal(9);
  EXPECT_EQ(entry.ns[static_cast<int>(WaitClass::kCpuExec)], 2 * kSecond);
  ExpectConserved(profiler);
}

TEST(StallProfilerTest, ParallelLanesScaleToElapsedExactly) {
  CostLedger ledger;
  StallProfiler profiler(&ledger, nullptr);
  profiler.BeginParallel(0.0);
  {
    ScopedAttribution a(&ledger, Attr(1, -1, 1));
    profiler.Charge(WaitClass::kNetworkTransfer, 0.0, 0.6);
  }
  {
    ScopedAttribution b(&ledger, Attr(2, -1, 1));
    profiler.Charge(WaitClass::kNetworkTransfer, 0.0, 0.6);
  }
  // Two lanes of 0.6s overlapped inside a section that took 0.6s of
  // wall sim-time: each is scaled to half the section.
  profiler.EndParallel(0.6);
  EXPECT_EQ(profiler.QueryTotal(1).TotalNanos(), 3 * kSecond / 10);
  EXPECT_EQ(profiler.QueryTotal(2).TotalNanos(), 3 * kSecond / 10);
  EXPECT_EQ(profiler.window_nanos(), 6 * kSecond / 10);
  ExpectConserved(profiler);
}

TEST(StallProfilerTest, ParallelScalingIsExactUnderRemainders) {
  CostLedger ledger;
  StallProfiler profiler(&ledger, nullptr);
  profiler.BeginParallel(0.0);
  // Three lanes whose scaled shares cannot all round down (1/3 ns each
  // of remainder); largest-remainder assignment must still sum exactly.
  for (uint64_t q = 1; q <= 3; ++q) {
    ScopedAttribution a(&ledger, Attr(q, -1, 1));
    profiler.Charge(WaitClass::kOcmFetch, 0.0, 1.0);
  }
  profiler.EndParallel(1.0 / 3.0);
  int64_t elapsed = StallProfiler::ToNanos(1.0 / 3.0);
  EXPECT_EQ(EntrySum(profiler), elapsed);
  EXPECT_EQ(profiler.window_nanos(), elapsed);
  ExpectConserved(profiler);
}

TEST(StallProfilerTest, ParallelUnderfillRegistersRawCharges) {
  CostLedger ledger;
  StallProfiler profiler(&ledger, nullptr);
  ScopedAttribution scope(&ledger, Attr(4, -1, 1));
  profiler.BeginScope(WaitClass::kCpuExec, 0.0);
  profiler.BeginParallel(0.0);
  profiler.Charge(WaitClass::kNetworkTransfer, 0.0, 0.25);
  // Section elapsed 1s > 0.25s of lane weight: charges register raw and
  // the idle tail stays with the enclosing scope's residual.
  profiler.EndParallel(1.0);
  profiler.EndScope(1.0);
  StallProfiler::Entry entry = profiler.QueryTotal(4);
  EXPECT_EQ(entry.ns[static_cast<int>(WaitClass::kNetworkTransfer)],
            kSecond / 4);
  EXPECT_EQ(entry.ns[static_cast<int>(WaitClass::kCpuExec)],
            3 * kSecond / 4);
  ExpectConserved(profiler);
}

TEST(StallProfilerTest, BackgroundChargesAreShadowTime) {
  CostLedger ledger;
  StallProfiler profiler(&ledger, nullptr);
  {
    ScopedAttribution scope(&ledger, Attr(6, -1, 1));
    profiler.BeginBackground();
    profiler.Charge(WaitClass::kOcmUpload, 10.0, 10.5);
    profiler.EndBackground();
  }
  StallProfiler::Entry entry = profiler.QueryTotal(6);
  EXPECT_EQ(entry.ns[static_cast<int>(WaitClass::kOcmUpload)], kSecond / 2);
  EXPECT_EQ(entry.background, kSecond / 2);
  EXPECT_EQ(profiler.window_nanos(), 0);
  EXPECT_EQ(profiler.background_nanos(), kSecond / 2);
  ExpectConserved(profiler);
}

TEST(StallProfilerTest, BackgroundInsideScopeLeavesForegroundExact) {
  CostLedger ledger;
  StallProfiler profiler(&ledger, nullptr);
  ScopedAttribution scope(&ledger, Attr(8, -1, 1));
  profiler.BeginScope(WaitClass::kCpuExec, 0.0);
  {
    // Deferred work drains while query 8's scope is open, attributed to
    // the enqueuing query 11; the open scope's inner time must not move.
    ScopedAttribution enqueuer(&ledger, Attr(11, -1, 1));
    profiler.BeginBackground();
    profiler.Charge(WaitClass::kOcmUpload, 0.0, 5.0);
    profiler.EndBackground();
  }
  profiler.EndScope(1.0);
  EXPECT_EQ(profiler.QueryTotal(8).TotalNanos(), kSecond);
  EXPECT_EQ(profiler.QueryTotal(8).background, 0);
  EXPECT_EQ(profiler.QueryTotal(11).background, 5 * kSecond);
  EXPECT_EQ(profiler.window_nanos(), kSecond);
  EXPECT_EQ(profiler.background_nanos(), 5 * kSecond);
  ExpectConserved(profiler);
}

TEST(StallProfilerTest, FramesIsolateScopeStacks) {
  CostLedger ledger;
  StallProfiler profiler(&ledger, nullptr);
  ScopedAttribution scope(&ledger, Attr(1, -1, 1));
  profiler.BeginScope(WaitClass::kCpuExec, 0.0);

  // A different fiber's frame swaps in: its charges must not credit the
  // default frame's open scope.
  auto frame = profiler.NewFrame();
  StallProfiler::Frame* host = profiler.SwapFrame(frame.get());
  {
    ScopedAttribution other(&ledger, Attr(2, -1, 1));
    profiler.Charge(WaitClass::kLockWait, 0.0, 0.5);
  }
  profiler.SwapFrame(host);

  profiler.EndScope(1.0);
  // Query 1's scope keeps its full residual; query 2's charge was
  // top-level in its own frame, so both credited the window.
  EXPECT_EQ(profiler.QueryTotal(1).ns[static_cast<int>(WaitClass::kCpuExec)],
            kSecond);
  EXPECT_EQ(profiler.QueryTotal(2).ns[static_cast<int>(WaitClass::kLockWait)],
            kSecond / 2);
  EXPECT_EQ(profiler.window_nanos(), kSecond + kSecond / 2);
  ExpectConserved(profiler);
}

TEST(StallProfilerTest, TenantTotalJoinsLedgerMapping) {
  CostLedger ledger;
  StallProfiler profiler(&ledger, nullptr);
  ledger.SetQueryTenant(21, "red");
  ledger.SetQueryTenant(22, "blue");
  {
    ScopedAttribution a(&ledger, Attr(21, -1, 1));
    profiler.Charge(WaitClass::kNetworkTransfer, 0.0, 1.0);
  }
  {
    ScopedAttribution b(&ledger, Attr(22, -1, 1));
    profiler.Charge(WaitClass::kNetworkTransfer, 0.0, 2.0);
  }
  EXPECT_EQ(profiler.TenantTotal("red").TotalNanos(), kSecond);
  EXPECT_EQ(profiler.TenantTotal("blue").TotalNanos(), 2 * kSecond);
  EXPECT_EQ(profiler.TenantTotal("").TotalNanos(), 0);
  EXPECT_EQ(profiler.GrandTotal().TotalNanos(), 3 * kSecond);
}

TEST(StallProfilerTest, ResetClearsEverything) {
  CostLedger ledger;
  StallProfiler profiler(&ledger, nullptr);
  profiler.Charge(WaitClass::kLockWait, 0.0, 1.0);
  profiler.BeginBackground();
  profiler.Charge(WaitClass::kOcmUpload, 0.0, 1.0);
  profiler.EndBackground();
  profiler.Reset();
  EXPECT_TRUE(profiler.entries().empty());
  EXPECT_EQ(profiler.window_nanos(), 0);
  EXPECT_EQ(profiler.background_nanos(), 0);
}

// The morsel executor's shape: a parallel section whose lane charges are
// consecutive disjoint windows telescoping to exactly the section's
// elapsed time, nested inside an operator scope, nested inside a pinned
// per-job query scope (how the workload engine brackets a job body).
// The telescoping lanes must register unscaled, the operator residual
// and the pinned query residual must each be exact, and the per-entry
// class sums must telescope to the window (what tools/stall_top.py
// --check verifies per entry on every report).
TEST(StallProfilerTest, MorselLanesInsidePinnedScopeStayExact) {
  CostLedger ledger;
  StallProfiler profiler(&ledger, /*tracer=*/nullptr);
  {
    ScopedAttribution query(&ledger, Attr(11, -1, 1, "job"));
    profiler.BeginScope(WaitClass::kCpuExec, 0.0);
    profiler.PinScopeAttribution();
    {
      ScopedAttribution op(&ledger, Attr(11, 0, 1, "job"));
      profiler.BeginScope(WaitClass::kCpuExec, 0.0);
      profiler.BeginParallel(0.0);
      profiler.Charge(WaitClass::kCpuExec, 0.0, 0.25);  // morsel 0
      profiler.Charge(WaitClass::kCpuExec, 0.25, 0.5);  // morsel 1
      profiler.EndParallel(0.5);
      profiler.EndScope(0.75);
    }
    profiler.EndScope(1.0);
  }
  int64_t op_ns = 0, query_level_ns = 0;
  for (const auto& [key, entry] : profiler.entries()) {
    ASSERT_EQ(key.query_id, 11u);
    if (key.operator_id == 0) op_ns = entry.TotalNanos();
    if (key.operator_id == -1) query_level_ns = entry.TotalNanos();
  }
  // Operator: 0.5s of unscaled morsel lanes + 0.25s scope residual.
  EXPECT_EQ(op_ns, 3 * kSecond / 4);
  // Pinned query scope keeps only its own residual.
  EXPECT_EQ(query_level_ns, kSecond / 4);
  EXPECT_EQ(profiler.QueryTotal(11).TotalNanos(), kSecond);
  EXPECT_EQ(profiler.window_nanos(), kSecond);
  ExpectConserved(profiler);
}

// The RAII wrapper the executor-adjacent code uses for parallel
// sections: construction/destruction bracket Begin/EndParallel on the
// clock's current time.
TEST(StallProfilerTest, ScopedParallelStallBracketsSection) {
  CostLedger ledger;
  StallProfiler profiler(&ledger, /*tracer=*/nullptr);
  SimClock clock;
  ScopedAttribution scope(&ledger, Attr(4, -1, 1));
  {
    ScopedParallelStall parallel(&profiler, &clock);
    profiler.Charge(WaitClass::kCpuExec, 0.0, 0.125);
    clock.AdvanceTo(0.125);
  }
  EXPECT_EQ(profiler.QueryTotal(4).TotalNanos(), kSecond / 8);
  EXPECT_EQ(profiler.window_nanos(), kSecond / 8);
  ExpectConserved(profiler);
}

TEST(StallProfilerTest, WaitClassNamesAreStable) {
  EXPECT_STREQ(WaitClassName(WaitClass::kCpuExec), "cpu_exec");
  EXPECT_STREQ(WaitClassName(WaitClass::kLockWait), "lock_wait");
  EXPECT_STREQ(WaitClassName(WaitClass::kAdmissionQueue),
               "admission_queue");
  EXPECT_STREQ(WaitClassName(WaitClass::kBufferFill), "buffer_fill");
  EXPECT_STREQ(WaitClassName(WaitClass::kOcmFetch), "ocm_fetch");
  EXPECT_STREQ(WaitClassName(WaitClass::kOcmUpload), "ocm_upload");
  EXPECT_STREQ(WaitClassName(WaitClass::kNetworkTransfer),
               "network_transfer");
  EXPECT_STREQ(WaitClassName(WaitClass::kThrottleBackoff),
               "throttle_backoff");
  EXPECT_STREQ(WaitClassName(WaitClass::kNdpSelect), "ndp_select");
}

}  // namespace
}  // namespace cloudiq
