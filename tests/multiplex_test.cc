#include <gtest/gtest.h>

#include "exec/executor.h"
#include "multiplex/multiplex.h"
#include "tpch/queries.h"
#include "tpch/tpch_gen.h"
#include "tpch/tpch_loader.h"

namespace cloudiq {
namespace {

Multiplex::Options TestOptions() {
  Multiplex::Options options;
  options.db.user_storage = UserStorage::kObjectStore;
  options.db.page_size = 64 * 1024;
  return options;
}

TEST(MultiplexTest, SecondariesDrawKeysFromCoordinator) {
  SimEnvironment env;
  Multiplex mx(&env, /*secondary_count=*/2, TestOptions());

  // Write through a secondary: keys must come from the coordinator's
  // generator, tracked in that node's active set.
  Database& writer = mx.secondary(0);
  TableSchema schema;
  schema.name = "t";
  schema.table_id = 30;
  schema.columns = {{"k", ColumnType::kInt64}};
  Transaction* txn = writer.Begin();
  TableLoader loader = writer.NewTableLoader(txn, schema);
  Batch batch;
  batch.AddColumn("k", {ColumnType::kInt64, {}, {}, {}});
  for (int64_t i = 0; i < 5000; ++i) batch.columns[0].ints.push_back(i);
  ASSERT_TRUE(loader.Append(batch.columns).ok());
  ASSERT_TRUE(loader.Finish(writer.system()).ok());
  ASSERT_TRUE(writer.Commit(txn).ok());

  EXPECT_GT(mx.rpc_count(), 0u);
  EXPECT_GT(mx.coordinator().keygen().max_allocated(), uint64_t{1} << 63);
  // Consumed keys left node 1's active set at commit.
  Result<IdentityObject> identity = writer.txn_mgr().catalog().Get(
      TableLoader::ObjectIdFor(30, 0, 0));
  ASSERT_TRUE(identity.ok());
  EXPECT_FALSE(mx.coordinator().keygen().ActiveSet(1).Contains(
      identity->root.cloud_key()));
}

TEST(MultiplexTest, ReadersSeeWriterCommitsAfterSync) {
  SimEnvironment env;
  Multiplex mx(&env, 2, TestOptions());
  TpchGenerator gen(0.002);
  TpchLoadOptions load;
  load.partitions = 2;
  // Load nation through the coordinator (the DDL/bulk node).
  ASSERT_TRUE(LoadTpchTable(&mx.coordinator(), &gen, kNation, load).ok());
  ASSERT_TRUE(mx.SyncCatalogs().ok());

  for (int i = 0; i < 2; ++i) {
    Database& reader_db = mx.secondary(i);
    Transaction* txn = reader_db.Begin();
    QueryContext ctx(&reader_db.txn_mgr(), txn, reader_db.system());
    Result<TableReader> reader = ctx.OpenTable(kNation);
    ASSERT_TRUE(reader.ok()) << reader.status().ToString();
    Result<Batch> rows = ScanTable(&ctx, &*reader, {"n_name"});
    ASSERT_TRUE(rows.ok());
    EXPECT_EQ(rows->rows(), 25u);
    ASSERT_TRUE(reader_db.Commit(txn).ok());
  }
}

TEST(MultiplexTest, WriterRestartCollectsOrphans) {
  SimEnvironment env;
  Multiplex mx(&env, 1, TestOptions());
  Database& writer = mx.secondary(0);

  // Commit a table so there is live committed data to protect.
  TableSchema schema;
  schema.name = "keep";
  schema.table_id = 40;
  schema.columns = {{"k", ColumnType::kInt64}};
  Transaction* txn = writer.Begin();
  TableLoader keep = writer.NewTableLoader(txn, schema);
  Batch batch;
  batch.AddColumn("k", {ColumnType::kInt64, {}, {}, {}});
  for (int64_t i = 0; i < 2000; ++i) batch.columns[0].ints.push_back(i);
  ASSERT_TRUE(keep.Append(batch.columns).ok());
  ASSERT_TRUE(keep.Finish(writer.system()).ok());
  ASSERT_TRUE(writer.Commit(txn).ok());
  uint64_t committed_live = env.object_store().LiveObjectCount();

  // An in-flight transaction uploads orphans, then the node dies.
  TableSchema doomed = schema;
  doomed.table_id = 41;
  doomed.name = "doomed";
  Transaction* dtxn = writer.Begin();
  TableLoader dloader = writer.NewTableLoader(dtxn, doomed);
  ASSERT_TRUE(dloader.Append(batch.columns).ok());
  ASSERT_TRUE(dloader.Finish(writer.system()).ok());
  ASSERT_TRUE(writer.txn_mgr().buffer().FlushTxn(dtxn->id).ok());
  ASSERT_GT(env.object_store().LiveObjectCount(), committed_live);

  Result<uint64_t> collected = mx.RestartSecondary(0);
  ASSERT_TRUE(collected.ok()) << collected.status().ToString();
  EXPECT_GT(*collected, 0u);
  EXPECT_EQ(env.object_store().LiveObjectCount(), committed_live);
  // The coordinator cleared the node's active set.
  EXPECT_TRUE(mx.coordinator().keygen().ActiveSet(1).empty());
  // Committed data still readable on the restarted node.
  Transaction* rtxn = writer.Begin();
  QueryContext ctx(&writer.txn_mgr(), rtxn, writer.system());
  Result<TableReader> reader = ctx.OpenTable(40);
  ASSERT_TRUE(reader.ok());
  Result<Batch> rows = ScanTable(&ctx, &*reader, {"k"});
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->rows(), 2000u);
  ASSERT_TRUE(writer.Commit(rtxn).ok());
}

TEST(MultiplexTest, SequentialWritersPropagateThroughSharedCatalog) {
  // Writer A commits table 30, everyone syncs; writer B (having attached
  // A's catalog) commits table 31. Both tables must be visible
  // cluster-wide afterwards — the shared "catalog" blob accumulates both
  // writers' updates because each writer attaches before writing.
  SimEnvironment env;
  Multiplex mx(&env, 3, TestOptions());

  auto load = [&](Database& writer, uint64_t table_id) {
    TableSchema schema;
    schema.name = "t" + std::to_string(table_id);
    schema.table_id = table_id;
    schema.columns = {{"k", ColumnType::kInt64}};
    Transaction* txn = writer.Begin();
    TableLoader loader = writer.NewTableLoader(txn, schema);
    Batch batch;
    batch.AddColumn("k", {ColumnType::kInt64, {}, {}, {}});
    for (int64_t i = 0; i < 1000; ++i) batch.columns[0].ints.push_back(i);
    ASSERT_TRUE(loader.Append(batch.columns).ok());
    ASSERT_TRUE(loader.Finish(writer.system()).ok());
    ASSERT_TRUE(writer.Commit(txn).ok());
  };

  load(mx.secondary(0), 30);
  ASSERT_TRUE(mx.SyncCatalogs().ok());
  load(mx.secondary(1), 31);
  ASSERT_TRUE(mx.SyncCatalogs().ok());

  for (int i = 0; i < 3; ++i) {
    Database& reader_db = mx.secondary(i);
    for (uint64_t table : {uint64_t{30}, uint64_t{31}}) {
      Transaction* txn = reader_db.Begin();
      QueryContext ctx = reader_db.NewQueryContext(txn);
      Result<TableReader> reader = ctx.OpenTable(table);
      ASSERT_TRUE(reader.ok())
          << "node " << i << " table " << table << ": "
          << reader.status().ToString();
      Result<Batch> rows = ScanTable(&ctx, &*reader, {"k"});
      ASSERT_TRUE(rows.ok());
      EXPECT_EQ(rows->rows(), 1000u);
      ASSERT_TRUE(reader_db.Commit(txn).ok());
    }
  }
}

TEST(MultiplexTest, RolledBackRangesRepolledIdempotently) {
  // The §3.3 optimization: rollback GC is not communicated; restart
  // re-polls the same ranges, and idempotent deletes make that safe.
  SimEnvironment env;
  Multiplex mx(&env, 1, TestOptions());
  Database& writer = mx.secondary(0);

  TableSchema schema;
  schema.name = "rb";
  schema.table_id = 50;
  schema.columns = {{"k", ColumnType::kInt64}};
  Transaction* txn = writer.Begin();
  TableLoader loader = writer.NewTableLoader(txn, schema);
  Batch batch;
  batch.AddColumn("k", {ColumnType::kInt64, {}, {}, {}});
  for (int64_t i = 0; i < 3000; ++i) batch.columns[0].ints.push_back(i);
  ASSERT_TRUE(loader.Append(batch.columns).ok());
  ASSERT_TRUE(loader.Finish(writer.system()).ok());
  ASSERT_TRUE(writer.txn_mgr().buffer().FlushTxn(txn->id).ok());
  ASSERT_TRUE(writer.Rollback(txn).ok());
  EXPECT_EQ(env.object_store().LiveObjectCount(), 0u);
  // Coordinator was NOT told about the rollback.
  EXPECT_FALSE(mx.coordinator().keygen().ActiveSet(1).empty());

  // Restart re-polls the whole range without error. A key may be
  // re-collected if its rollback delete's visibility lagged (eventual
  // consistency) — the re-poll is the idempotent safety net.
  Result<uint64_t> collected = mx.RestartSecondary(0);
  ASSERT_TRUE(collected.ok());
  EXPECT_LE(*collected, 3u);
  EXPECT_TRUE(mx.coordinator().keygen().ActiveSet(1).empty());
  EXPECT_EQ(env.object_store().LiveObjectCount(), 0u);
}

TEST(MultiplexTest, ReaderQueryChargedToReaderNodeNotCoordinator) {
  SimEnvironment env;
  Multiplex mx(&env, 2, TestOptions());
  CostLedger& ledger = env.telemetry().ledger();
  TpchGenerator gen(0.002);
  TpchLoadOptions load;
  load.partitions = 2;
  ASSERT_TRUE(LoadTpchTable(&mx.coordinator(), &gen, kLineitem, load).ok());
  ASSERT_TRUE(mx.SyncCatalogs().ok());

  // Run a scan on secondary 1 under its own query attribution. The
  // reader's buffer pool is cold, so the scan must fetch pages from the
  // shared object store — and those requests must land on this query id
  // with the *reader's* node id, not the coordinator's.
  Database& reader_db = mx.secondary(1);
  Transaction* txn = reader_db.Begin();
  QueryContext ctx = reader_db.NewQueryContext(txn, "reader-scan");
  uint64_t query_id = ctx.attribution().query_id;
  {
    ScopedQueryAttribution scope(&ctx);
    Result<TableReader> reader = ctx.OpenTable(kLineitem);
    ASSERT_TRUE(reader.ok()) << reader.status().ToString();
    Result<Batch> rows =
        ScanTable(&ctx, &*reader, {"l_orderkey", "l_quantity"});
    ASSERT_TRUE(rows.ok()) << rows.status().ToString();
    EXPECT_GT(rows->rows(), 0u);
    ASSERT_TRUE(reader_db.Commit(txn).ok());
  }

  EXPECT_EQ(ctx.attribution().node_id, reader_db.node().trace_pid());
  CostLedger::Entry total = ledger.QueryTotal(query_id);
  EXPECT_GT(total.gets, 0u);
  EXPECT_GT(total.buffer_misses, 0u);

  uint32_t reader_node = reader_db.node().trace_pid();
  uint32_t coordinator_node = mx.coordinator().node().trace_pid();
  ASSERT_NE(reader_node, coordinator_node);
  for (const auto& [key, entry] : ledger.entries()) {
    if (key.query_id != query_id) continue;
    EXPECT_EQ(key.node_id, reader_node)
        << "entry for operator " << key.operator_id
        << " charged to node " << key.node_id;
    EXPECT_NE(key.node_id, coordinator_node);
  }
}

}  // namespace
}  // namespace cloudiq
