// Tests for the concurrent workload engine: admission control state
// machine, token-bucket refill on the simulated clock, weighted fair
// share with priority aging, step-sliced interleaving, SLO and cost
// accounting, and determinism of the whole schedule.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "engine/database.h"
#include "engine/session.h"
#include "telemetry/report.h"
#include "telemetry/stall_profiler.h"
#include "workload/admission.h"
#include "workload/fair_scheduler.h"
#include "workload/step_fiber.h"
#include "workload/workload_driver.h"
#include "workload/workload_engine.h"

namespace cloudiq {
namespace {

using Decision = AdmissionController::Decision;

// --- token bucket --------------------------------------------------------

TEST(TokenBucketTest, RefillsOnSimClock) {
  TokenBucket bucket(/*rate_per_sec=*/2.0, /*burst=*/4.0);
  // Starts full: burst tokens available at t=0.
  EXPECT_TRUE(bucket.TryTake(0));
  EXPECT_TRUE(bucket.TryTake(0));
  EXPECT_TRUE(bucket.TryTake(0));
  EXPECT_TRUE(bucket.TryTake(0));
  EXPECT_FALSE(bucket.TryTake(0));
  // One simulated second refills rate tokens.
  EXPECT_NEAR(bucket.TokensAt(1.0), 2.0, 1e-12);
  EXPECT_TRUE(bucket.TryTake(1.0));
  EXPECT_TRUE(bucket.TryTake(1.0));
  EXPECT_FALSE(bucket.TryTake(1.0));
  // Refill caps at burst, never beyond.
  EXPECT_NEAR(bucket.TokensAt(1000.0), 4.0, 1e-12);
  // Time moving backwards (stale caller) never mints tokens.
  TokenBucket drained(1.0, 1.0);
  EXPECT_TRUE(drained.TryTake(5.0));
  EXPECT_FALSE(drained.TryTake(4.0));
}

TEST(TokenBucketTest, NonPositiveRateIsUnlimited) {
  TokenBucket bucket(0.0, 1.0);
  EXPECT_TRUE(bucket.unlimited());
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(bucket.TryTake(0));
}

// --- admission controller ------------------------------------------------

TEST(AdmissionTest, AdmitQueueShedTransitions) {
  AdmissionController::Options options;
  options.concurrency_limit = 1;
  options.max_queue_depth = 2;
  AdmissionController admission(options);

  // Free slot, empty queue: admit.
  EXPECT_EQ(admission.Decide("a", 0, 0, 0, /*can_dispatch_now=*/true),
            Decision::kAdmit);
  admission.OnDispatch();
  EXPECT_FALSE(admission.HasRunSlot());

  // Slot busy: queue until the depth threshold, then shed.
  EXPECT_EQ(admission.Decide("a", 0, 0, 0, false), Decision::kQueue);
  admission.OnQueue();
  EXPECT_EQ(admission.Decide("a", 0, 0, 0, false), Decision::kQueue);
  admission.OnQueue();
  EXPECT_EQ(admission.Decide("a", 0, 0, 0, false),
            Decision::kShedQueueFull);
  EXPECT_EQ(admission.queued(), 2u);

  // Draining the queue reopens admission; completing frees the slot.
  admission.OnDequeue();
  EXPECT_EQ(admission.Decide("a", 0, 0, 0, false), Decision::kQueue);
  admission.OnComplete();
  EXPECT_TRUE(admission.HasRunSlot());
}

TEST(AdmissionTest, AdmitRequiresEmptyQueue) {
  // A free slot must not let an arrival jump over already-queued work.
  AdmissionController admission({});
  admission.OnQueue();
  EXPECT_EQ(admission.Decide("a", 0, 0, 0, /*can_dispatch_now=*/true),
            Decision::kQueue);
}

TEST(AdmissionTest, BudgetAndRateLimitShed) {
  AdmissionController admission({});
  admission.RegisterTenant("t", /*rate_per_sec=*/1.0, /*burst=*/1.0);
  // Budget check precedes everything (no token consumed on budget shed).
  EXPECT_EQ(admission.Decide("t", 0, /*spent_usd=*/5.0, /*budget_usd=*/1.0,
                             true),
            Decision::kShedBudget);
  EXPECT_NEAR(admission.TenantTokens("t", 0), 1.0, 1e-12);
  // Token taken, admitted; bucket now empty, next arrival sheds.
  EXPECT_EQ(admission.Decide("t", 0, 0, 0, true), Decision::kAdmit);
  EXPECT_EQ(admission.Decide("t", 0.1, 0, 0, true),
            Decision::kShedRateLimited);
  // The sim clock refills it.
  EXPECT_EQ(admission.Decide("t", 1.5, 0, 0, true), Decision::kAdmit);
}

// --- fair scheduler ------------------------------------------------------

TEST(FairSchedulerTest, PicksLeastVirtualService) {
  FairScheduler scheduler({});
  scheduler.RegisterTenant("a", 1.0);
  scheduler.RegisterTenant("b", 1.0);
  scheduler.Enqueue("a", 1, 0);
  scheduler.Enqueue("b", 2, 0);
  scheduler.AddService("a", 10.0);
  auto pick = scheduler.PickNext(0);
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(pick->tenant, "b");
  EXPECT_EQ(pick->job_id, 2u);
  // b charged past a: a's turn.
  scheduler.AddService("b", 20.0);
  scheduler.Enqueue("b", 3, 0);
  pick = scheduler.PickNext(0);
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(pick->tenant, "a");
  EXPECT_EQ(scheduler.queued(), 1u);
}

TEST(FairSchedulerTest, WeightsScaleService) {
  FairScheduler scheduler({});
  scheduler.RegisterTenant("heavy", 2.0);
  scheduler.RegisterTenant("light", 1.0);
  // Same raw seconds: heavy's virtual service grows half as fast.
  scheduler.AddService("heavy", 10.0);
  scheduler.AddService("light", 10.0);
  EXPECT_NEAR(scheduler.virtual_service("heavy"), 5.0, 1e-12);
  EXPECT_NEAR(scheduler.virtual_service("light"), 10.0, 1e-12);
  scheduler.Enqueue("heavy", 1, 0);
  scheduler.Enqueue("light", 2, 0);
  auto pick = scheduler.PickNext(0);
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(pick->tenant, "heavy");
}

TEST(FairSchedulerTest, PriorityAgingBeatsServiceDeficit) {
  // "ahead" has a 1s virtual-service deficit against "behind", but its
  // job has waited 25s while behind's arrives fresh: aging credit
  // 0.05 * 25 = 1.25 outweighs the deficit, so the stale job dispatches
  // first. "anchor" stays backlogged at zero service throughout so
  // catch-up-on-wake does not lift behind's service on enqueue.
  auto build = [](double aging_rate) {
    FairScheduler::Options options;
    options.aging_rate = aging_rate;
    FairScheduler scheduler(options);
    scheduler.RegisterTenant("anchor", 1.0);
    scheduler.RegisterTenant("ahead", 1.0);
    scheduler.RegisterTenant("behind", 1.0);
    scheduler.AddService("ahead", 1.0);
    scheduler.AddService("behind", 0.5);
    scheduler.Enqueue("anchor", 1, /*now=*/0);
    scheduler.Enqueue("ahead", 2, /*now=*/0);
    scheduler.Enqueue("behind", 3, /*now=*/25);
    // The zero-service anchor dispatches first either way.
    auto first = scheduler.PickNext(/*now=*/25);
    EXPECT_TRUE(first.has_value() && first->tenant == "anchor");
    return scheduler.PickNext(/*now=*/25);
  };

  auto aged = build(/*aging_rate=*/0.05);
  ASSERT_TRUE(aged.has_value());
  EXPECT_EQ(aged->tenant, "ahead");

  // Pure WFQ (aging off) ignores the wait and picks the lower service.
  auto pure = build(/*aging_rate=*/0.0);
  ASSERT_TRUE(pure.has_value());
  EXPECT_EQ(pure->tenant, "behind");
}

TEST(FairSchedulerTest, CatchUpOnWakePreventsMonopoly) {
  FairScheduler scheduler({});
  scheduler.RegisterTenant("busy", 1.0);
  scheduler.RegisterTenant("idle", 1.0);
  scheduler.AddService("busy", 100.0);
  scheduler.Enqueue("busy", 1, 0);
  // The idle tenant wakes with zero service; catch-up lifts it to the
  // backlogged minimum so it does not monopolize every future pick.
  scheduler.Enqueue("idle", 2, 0);
  EXPECT_NEAR(scheduler.virtual_service("idle"), 100.0, 1e-12);
}

// --- step fiber ----------------------------------------------------------

TEST(StepFiberTest, ResumesUntilDone) {
  int steps = 0;
  StepFiber* self = nullptr;
  StepFiber fiber([&] {
    for (int i = 0; i < 3; ++i) {
      ++steps;
      self->Yield();
    }
  });
  self = &fiber;
  EXPECT_TRUE(fiber.Resume());  // runs to first yield
  EXPECT_EQ(steps, 1);
  EXPECT_TRUE(fiber.Resume());
  EXPECT_TRUE(fiber.Resume());
  EXPECT_FALSE(fiber.Resume());  // body returns
  EXPECT_EQ(steps, 3);
}

TEST(StepFiberTest, DestructionCancelsParkedBody) {
  bool cleaned_up = false;
  {
    StepFiber* self = nullptr;
    auto fiber = std::make_unique<StepFiber>([&] {
      struct Guard {
        bool* flag;
        ~Guard() { *flag = true; }
      } guard{&cleaned_up};
      for (;;) self->Yield();
    });
    self = fiber.get();
    EXPECT_TRUE(fiber->Resume());
    fiber.reset();  // cancels the parked body; its stack unwinds
  }
  EXPECT_TRUE(cleaned_up);
}

// --- engine --------------------------------------------------------------

Database::Options SmallDbOptions() {
  Database::Options options;
  options.user_storage = UserStorage::kObjectStore;
  options.page_size = 8192;
  options.blockmap_fanout = 16;
  return options;
}

// A query body that burns `steps` slices of simulated CPU, yielding to
// the engine after each (ChargeValues invokes the step hook).
WorkloadEngine::QueryBody SyntheticBody(int steps,
                                        uint64_t values_per_step = 500000) {
  return [steps, values_per_step](Session*, QueryContext* ctx) {
    for (int i = 0; i < steps; ++i) ctx->ChargeValues(values_per_step);
    return Status::Ok();
  };
}

struct EngineHarness {
  SimEnvironment env;
  std::unique_ptr<Database> db;
  std::unique_ptr<WorkloadEngine> engine;

  explicit EngineHarness(
      WorkloadEngine::Options options,
      std::vector<WorkloadEngine::TenantConfig> tenants = {}) {
    db = std::make_unique<Database>(&env, InstanceProfile::M5ad4xlarge(),
                                    SmallDbOptions());
    engine = std::make_unique<WorkloadEngine>(
        std::vector<Database*>{db.get()}, options, std::move(tenants));
  }
};

TEST(WorkloadEngineTest, InterleavesJobsOnOneNode) {
  WorkloadEngine::Options options;
  options.slots_per_node = 2;
  EngineHarness h(options);
  std::vector<WorkloadEngine::Completion> done;
  h.engine->set_completion_hook(
      [&](const WorkloadEngine::Completion& c) { done.push_back(c); });
  h.engine->Submit("a", "q1", 0, SyntheticBody(10));
  h.engine->Submit("b", "q1", 0, SyntheticBody(10));
  ASSERT_TRUE(h.engine->RunUntilIdle().ok());

  ASSERT_EQ(done.size(), 2u);
  EXPECT_TRUE(done[0].status.ok());
  EXPECT_TRUE(done[1].status.ok());
  // Both queries sliced into many fiber steps...
  EXPECT_GE(h.engine->steps(), 20u);
  // ...and time-shared the node: the two finish times are close together
  // (within one job's active time), not serialized end-to-end.
  double gap = std::abs(done[1].finish - done[0].finish);
  EXPECT_LT(gap, done[0].active_seconds);
  EXPECT_EQ(h.engine->Counts("a").completed, 1u);
  EXPECT_EQ(h.engine->Counts("b").completed, 1u);
}

TEST(WorkloadEngineTest, QueueAndShedEngage) {
  WorkloadEngine::Options options;
  options.admission.concurrency_limit = 1;
  options.admission.max_queue_depth = 1;
  options.slots_per_node = 1;
  EngineHarness h(options);
  std::vector<WorkloadEngine::Completion> done;
  h.engine->set_completion_hook(
      [&](const WorkloadEngine::Completion& c) { done.push_back(c); });
  h.engine->Submit("a", "q1", 0, SyntheticBody(5));
  h.engine->Submit("a", "q2", 0, SyntheticBody(5));
  h.engine->Submit("a", "q3", 0, SyntheticBody(5));  // queue full: shed
  ASSERT_TRUE(h.engine->RunUntilIdle().ok());

  WorkloadEngine::TenantCounts counts = h.engine->Counts("a");
  EXPECT_EQ(counts.submitted, 3u);
  EXPECT_EQ(counts.completed, 2u);
  EXPECT_EQ(counts.shed_queue_full, 1u);
  ASSERT_EQ(done.size(), 3u);
  // The shed lands immediately, before either admitted query finishes.
  EXPECT_TRUE(done[0].shed);
  EXPECT_TRUE(done[0].status.IsBusy());
  EXPECT_EQ(done[0].dispatch, 0.0);
  // The queued query's wait shows up in its latency, not the admitted
  // one's.
  EXPECT_GT(done[2].finish - done[2].arrival,
            done[1].finish - done[1].arrival);
}

TEST(WorkloadEngineTest, RateLimitShedsAndRefills) {
  WorkloadEngine::TenantConfig tenant;
  tenant.name = "t";
  tenant.rate_per_sec = 1.0;
  tenant.burst = 1.0;
  EngineHarness h(WorkloadEngine::Options(), {tenant});
  h.engine->Submit("t", "q1", 0.0, SyntheticBody(2));
  h.engine->Submit("t", "q2", 0.01, SyntheticBody(2));  // bucket empty
  h.engine->Submit("t", "q3", 2.0, SyntheticBody(2));   // refilled
  ASSERT_TRUE(h.engine->RunUntilIdle().ok());
  WorkloadEngine::TenantCounts counts = h.engine->Counts("t");
  EXPECT_EQ(counts.completed, 2u);
  EXPECT_EQ(counts.shed_rate_limited, 1u);
}

TEST(WorkloadEngineTest, BudgetExhaustionSheds) {
  WorkloadEngine::TenantConfig tenant;
  tenant.name = "t";
  tenant.cost_budget_usd = 1e-12;  // first completed query exceeds it
  EngineHarness h(WorkloadEngine::Options(), {tenant});
  h.engine->Submit("t", "q1", 0, SyntheticBody(3));
  ASSERT_TRUE(h.engine->RunUntilIdle().ok());
  EXPECT_GT(h.engine->Counts("t").spent_usd, 1e-12);

  h.engine->Submit("t", "q2", h.engine->now(), SyntheticBody(3));
  ASSERT_TRUE(h.engine->RunUntilIdle().ok());
  WorkloadEngine::TenantCounts counts = h.engine->Counts("t");
  EXPECT_EQ(counts.completed, 1u);
  EXPECT_EQ(counts.shed_budget, 1u);
}

TEST(WorkloadEngineTest, SloAccounting) {
  WorkloadEngine::TenantConfig strict;
  strict.name = "strict";
  strict.slo_seconds = 1e-9;  // nothing real completes this fast
  WorkloadEngine::TenantConfig loose;
  loose.name = "loose";
  loose.slo_seconds = 1e9;
  EngineHarness h(WorkloadEngine::Options(), {strict, loose});
  h.engine->Submit("strict", "q", 0, SyntheticBody(3));
  h.engine->Submit("loose", "q", 0, SyntheticBody(3));
  ASSERT_TRUE(h.engine->RunUntilIdle().ok());
  EXPECT_EQ(h.engine->Counts("strict").slo_missed, 1u);
  EXPECT_EQ(h.engine->Counts("strict").slo_met, 0u);
  EXPECT_EQ(h.engine->Counts("loose").slo_met, 1u);
  EXPECT_EQ(h.engine->Counts("loose").slo_missed, 0u);
}

TEST(WorkloadEngineTest, FailedQueryCountsAsFailed) {
  EngineHarness h(WorkloadEngine::Options{});
  h.engine->Submit("t", "bad", 0, [](Session*, QueryContext* ctx) {
    ctx->ChargeValues(1000);
    return Status::IoError("synthetic failure");
  });
  ASSERT_TRUE(h.engine->RunUntilIdle().ok());
  WorkloadEngine::TenantCounts counts = h.engine->Counts("t");
  EXPECT_EQ(counts.completed, 0u);
  EXPECT_EQ(counts.failed, 1u);
}

// Fairness through the whole engine: full backlog at t=0, equal-cost
// queries, counts measured when the first tenant drains.
struct FairnessResult {
  uint64_t a_done_at_drain = 0;
  uint64_t b_done_at_drain = 0;
};

FairnessResult RunFairness(double weight_a, double weight_b) {
  WorkloadEngine::Options options;
  options.admission.concurrency_limit = 1;
  options.admission.max_queue_depth = 64;
  options.slots_per_node = 1;
  WorkloadEngine::TenantConfig a;
  a.name = "a";
  a.weight = weight_a;
  WorkloadEngine::TenantConfig b;
  b.name = "b";
  b.weight = weight_b;
  EngineHarness h(options, {a, b});
  constexpr uint64_t kPerTenant = 12;
  std::map<std::string, uint64_t> completed;
  FairnessResult result;
  bool drained = false;
  h.engine->set_completion_hook([&](const WorkloadEngine::Completion& c) {
    ++completed[c.tenant];
    if (!drained && completed[c.tenant] == kPerTenant) {
      drained = true;
      result.a_done_at_drain = completed["a"];
      result.b_done_at_drain = completed["b"];
    }
  });
  for (uint64_t i = 0; i < kPerTenant; ++i) {
    h.engine->Submit("a", "q", 0, SyntheticBody(4));
    h.engine->Submit("b", "q", 0, SyntheticBody(4));
  }
  EXPECT_TRUE(h.engine->RunUntilIdle().ok());
  return result;
}

TEST(WorkloadEngineTest, EqualWeightsShareEvenly) {
  FairnessResult r = RunFairness(1.0, 1.0);
  // Acceptance: < 20% difference in completed counts at equal weights.
  double diff = std::abs(static_cast<double>(r.a_done_at_drain) -
                         static_cast<double>(r.b_done_at_drain));
  double avg = (r.a_done_at_drain + r.b_done_at_drain) / 2.0;
  EXPECT_LT(diff / avg, 0.2) << r.a_done_at_drain << " vs "
                             << r.b_done_at_drain;
}

TEST(WorkloadEngineTest, WeightedSharesTrackRatio) {
  FairnessResult r = RunFairness(2.0, 1.0);
  ASSERT_GT(r.b_done_at_drain, 0u);
  double ratio = static_cast<double>(r.a_done_at_drain) /
                 static_cast<double>(r.b_done_at_drain);
  EXPECT_GT(ratio, 1.5) << r.a_done_at_drain << ":" << r.b_done_at_drain;
  EXPECT_LT(ratio, 2.5) << r.a_done_at_drain << ":" << r.b_done_at_drain;
}

// --- determinism ---------------------------------------------------------

struct ReplayTrace {
  std::vector<uint64_t> job_ids;
  std::vector<double> finishes;
  double ledger_usd = 0;
};

ReplayTrace RunReplay() {
  WorkloadEngine::Options options;
  options.admission.concurrency_limit = 3;
  options.slots_per_node = 2;
  EngineHarness h(options);
  ReplayTrace trace;
  h.engine->set_completion_hook([&](const WorkloadEngine::Completion& c) {
    trace.job_ids.push_back(c.job_id);
    trace.finishes.push_back(c.finish);
  });
  // Mixed tenants, staggered arrivals, mixed costs.
  for (int i = 0; i < 6; ++i) {
    h.engine->Submit("a", "q", 0.001 * i, SyntheticBody(3 + i % 3));
    h.engine->Submit("b", "q", 0.0015 * i, SyntheticBody(2 + i % 4));
  }
  EXPECT_TRUE(h.engine->RunUntilIdle().ok());
  CostLedger& ledger = h.env.telemetry().ledger();
  trace.ledger_usd = ledger.GrandTotal().TotalUsd(ledger.prices());
  return trace;
}

TEST(WorkloadEngineTest, ScheduleIsDeterministic) {
  ReplayTrace first = RunReplay();
  ReplayTrace second = RunReplay();
  ASSERT_EQ(first.job_ids.size(), second.job_ids.size());
  EXPECT_EQ(first.job_ids, second.job_ids);
  for (size_t i = 0; i < first.finishes.size(); ++i) {
    EXPECT_DOUBLE_EQ(first.finishes[i], second.finishes[i]) << i;
  }
  EXPECT_DOUBLE_EQ(first.ledger_usd, second.ledger_usd);
}

// --- cost invariants under concurrency (per-tenant ledger rollups) -------

TableSchema ScanSchema() {
  TableSchema schema;
  schema.name = "t";
  schema.table_id = 7;
  schema.columns = {{"k", ColumnType::kInt64}};
  schema.hg_index_columns = {0};
  return schema;
}

TEST(WorkloadCostTest, LedgerMatchesMeterWithInterleavedTenants) {
  SimEnvironment env;
  Database db(&env, InstanceProfile::M5ad4xlarge(), SmallDbOptions());
  {
    Transaction* txn = db.Begin();
    TableLoader loader = db.NewTableLoader(txn, ScanSchema());
    Batch batch;
    batch.AddColumn("k", {ColumnType::kInt64, {}, {}, {}});
    for (int64_t i = 0; i < 5000; ++i) {
      batch.columns[0].ints.push_back(i);
    }
    ASSERT_TRUE(loader.Append(batch.columns).ok());
    ASSERT_TRUE(loader.Finish(db.system()).ok());
    ASSERT_TRUE(db.Commit(txn).ok());
  }

  WorkloadEngine::Options options;
  options.admission.concurrency_limit = 3;
  options.slots_per_node = 3;
  WorkloadEngine engine({&db}, options, {});
  auto scan_body = [](Session*, QueryContext* ctx) {
    CLOUDIQ_ASSIGN_OR_RETURN(TableReader reader, ctx->OpenTable(7));
    return ScanTable(ctx, &reader, {"k"}).status();
  };
  const std::vector<std::string> tenant_names = {"red", "green", "blue"};
  for (int round = 0; round < 3; ++round) {
    for (const std::string& name : tenant_names) {
      engine.Submit(name, "scan", 0, scan_body);
    }
  }
  ASSERT_TRUE(engine.RunUntilIdle().ok());

  CostLedger& ledger = env.telemetry().ledger();
  const CostMeter& meter = env.cost_meter();
  // Grand total == meter: requests...
  CostLedger::Entry total = ledger.GrandTotal();
  EXPECT_EQ(total.gets, meter.s3_gets());
  EXPECT_EQ(total.puts, meter.s3_puts());
  EXPECT_EQ(total.ranged_gets, meter.s3_ranged_gets());
  // ...and USD (the engine bills per-job active seconds to both sides).
  EXPECT_NEAR(total.TotalUsd(ledger.prices()),
              meter.S3RequestUsd() + meter.Ec2Usd(), 1e-9);
  EXPECT_GT(meter.Ec2Usd(), 0.0);

  // Per-tenant rollups: every mapped tenant saw work, and tenant totals
  // plus the unattributed remainder ("") reconstruct the grand total.
  std::vector<std::string> tenants = ledger.Tenants();
  EXPECT_EQ(tenants,
            std::vector<std::string>({"blue", "green", "red"}));
  CostLedger::Entry sum;
  for (const std::string& name : tenants) {
    CostLedger::Entry t = ledger.TenantTotal(name);
    EXPECT_GT(t.sim_seconds, 0.0) << name;
    EXPECT_GT(t.ec2_usd, 0.0) << name;
    sum.Fold(t);
  }
  sum.Fold(ledger.TenantTotal(""));  // load phase ran outside any tenant
  EXPECT_EQ(sum.gets, total.gets);
  EXPECT_EQ(sum.puts, total.puts);
  EXPECT_EQ(sum.ranged_gets, total.ranged_gets);
  EXPECT_NEAR(sum.TotalUsd(ledger.prices()),
              total.TotalUsd(ledger.prices()), 1e-12);
  EXPECT_NEAR(sum.sim_seconds, total.sim_seconds, 1e-9);

  // Spent tracking feeds budgets from the same rollup.
  for (const std::string& name : tenant_names) {
    EXPECT_GT(engine.Counts(name).spent_usd, 0.0) << name;
  }
}

// With NDP on, concurrent tenants issue SELECTs instead of page GETs for
// their range scans; the ledger must mirror the meter on the new request
// class and its two byte dimensions, and the USD invariant must keep
// holding with the select terms in play.
TEST(WorkloadCostTest, LedgerMatchesMeterWithNdpSelects) {
  SimEnvironment env;
  Database::Options db_options = SmallDbOptions();
  db_options.enable_ocm = false;  // keep range scans on the object store
  db_options.ndp_mode = ndp::NdpMode::kOn;
  Database db(&env, InstanceProfile::M5ad4xlarge(), db_options);
  {
    Transaction* txn = db.Begin();
    TableLoader loader = db.NewTableLoader(txn, ScanSchema());
    Batch batch;
    batch.AddColumn("k", {ColumnType::kInt64, {}, {}, {}});
    for (int64_t i = 0; i < 5000; ++i) {
      batch.columns[0].ints.push_back(i);
    }
    ASSERT_TRUE(loader.Append(batch.columns).ok());
    ASSERT_TRUE(loader.Finish(db.system()).ok());
    ASSERT_TRUE(db.Commit(txn).ok());
  }

  WorkloadEngine::Options options;
  options.admission.concurrency_limit = 3;
  options.slots_per_node = 3;
  WorkloadEngine engine({&db}, options, {});
  // Range scans with different windows per submission, so several NDP
  // SELECT requests of different sizes interleave on the sim clock.
  for (int round = 0; round < 3; ++round) {
    for (const std::string& name : {"red", "green", "blue"}) {
      int64_t lo = 500 * (round + 1);
      int64_t hi = lo + 999;
      engine.Submit(name, "ndp-scan", 0,
                    [lo, hi](Session*, QueryContext* ctx) {
                      CLOUDIQ_ASSIGN_OR_RETURN(TableReader reader,
                                               ctx->OpenTable(7));
                      return ScanTable(ctx, &reader, {"k"},
                                       ScanRange{"k", lo, hi})
                          .status();
                    });
    }
  }
  ASSERT_TRUE(engine.RunUntilIdle().ok());

  const CostMeter& meter = env.cost_meter();
  ASSERT_GT(meter.s3_selects(), 0u);  // pushdown actually happened
  CostLedger& ledger = env.telemetry().ledger();
  CostLedger::Entry total = ledger.GrandTotal();
  EXPECT_EQ(total.selects, meter.s3_selects());
  EXPECT_EQ(total.select_scanned_bytes, meter.select_scanned_bytes());
  EXPECT_EQ(total.select_returned_bytes, meter.select_returned_bytes());
  EXPECT_EQ(total.gets, meter.s3_gets());
  EXPECT_EQ(total.puts, meter.s3_puts());
  EXPECT_NEAR(total.TotalUsd(ledger.prices()),
              meter.S3RequestUsd() + meter.Ec2Usd(), 1e-9);

  // Tenant rollups still reconstruct the grand total, selects included.
  CostLedger::Entry sum;
  for (const std::string& name : ledger.Tenants()) {
    sum.Fold(ledger.TenantTotal(name));
  }
  sum.Fold(ledger.TenantTotal(""));
  EXPECT_EQ(sum.selects, total.selects);
  EXPECT_EQ(sum.select_scanned_bytes, total.select_scanned_bytes);
  EXPECT_NEAR(sum.TotalUsd(ledger.prices()),
              total.TotalUsd(ledger.prices()), 1e-12);
}

// --- wait-state stall conservation ---------------------------------------

// The tentpole invariant, end to end: for every job the engine completed,
// the stall profiler's per-query wait classes minus the background shadow
// time equal finish - arrival exactly, in integer nanoseconds. Jobs are
// matched to query ids through their (unique) tags via the ledger.
void ExpectStallsConserve(
    SimEnvironment* env,
    const std::vector<WorkloadEngine::Completion>& done) {
  StallProfiler& profiler = env->telemetry().profiler();
  CostLedger& ledger = env->telemetry().ledger();
  std::map<std::string, uint64_t> query_by_tag;
  for (const auto& [query_id, tag] : ledger.Queries()) {
    query_by_tag[tag] = query_id;
  }
  size_t checked = 0;
  for (const WorkloadEngine::Completion& c : done) {
    if (c.shed) continue;
    auto it = query_by_tag.find(c.tag);
    ASSERT_NE(it, query_by_tag.end()) << c.tag;
    StallProfiler::Entry entry = profiler.QueryTotal(it->second);
    EXPECT_EQ(entry.TotalNanos() - entry.background,
              StallProfiler::ToNanos(c.finish) -
                  StallProfiler::ToNanos(c.arrival))
        << c.tag << " arrival=" << c.arrival << " finish=" << c.finish;
    ++checked;
  }
  EXPECT_GT(checked, 0u);

  // Global conservation: every nanosecond booked anywhere is covered by
  // exactly one of the two pools (foreground window, background shadow).
  int64_t sum = 0;
  for (const auto& [key, entry] : profiler.entries()) {
    sum += entry.TotalNanos();
  }
  EXPECT_EQ(sum, profiler.window_nanos() + profiler.background_nanos());
}

TEST(WorkloadStallTest, OpenLoopWaitsSumToLifetime) {
  // Open loop: 12 arrivals from 3 tenants burst against 2 run slots, so
  // admission queueing and fiber time-slicing both happen.
  WorkloadEngine::Options options;
  options.admission.concurrency_limit = 2;
  options.slots_per_node = 2;
  EngineHarness h(options);
  std::vector<WorkloadEngine::Completion> done;
  h.engine->set_completion_hook(
      [&](const WorkloadEngine::Completion& c) { done.push_back(c); });
  const std::vector<std::string> tenants = {"red", "green", "blue"};
  for (int i = 0; i < 12; ++i) {
    h.engine->Submit(tenants[i % 3], "o" + std::to_string(i),
                     i < 6 ? 0.0 : 0.0001 * i, SyntheticBody(3 + i % 4));
  }
  ASSERT_TRUE(h.engine->RunUntilIdle().ok());
  ASSERT_EQ(done.size(), 12u);
  ExpectStallsConserve(&h.env, done);

  // The backlog was real: some job waited in the admission queue, and
  // every job burned attributed CPU.
  StallProfiler::Entry grand = h.env.telemetry().profiler().GrandTotal();
  EXPECT_GT(grand.ns[static_cast<int>(WaitClass::kAdmissionQueue)], 0);
  EXPECT_GT(grand.ns[static_cast<int>(WaitClass::kCpuExec)], 0);
}

TEST(WorkloadStallTest, ClosedLoopScansConserveAndFeedGauges) {
  // Closed loop over real table scans: each completion resubmits its
  // tenant until the round quota is met, with the storage stack (buffer
  // pool, OCM, object store) live underneath — so I/O wait classes and
  // background cache traffic are all in play.
  SimEnvironment env;
  Database db(&env, InstanceProfile::M5ad4xlarge(), SmallDbOptions());
  {
    Transaction* txn = db.Begin();
    TableLoader loader = db.NewTableLoader(txn, ScanSchema());
    Batch batch;
    batch.AddColumn("k", {ColumnType::kInt64, {}, {}, {}});
    for (int64_t i = 0; i < 5000; ++i) {
      batch.columns[0].ints.push_back(i);
    }
    ASSERT_TRUE(loader.Append(batch.columns).ok());
    ASSERT_TRUE(loader.Finish(db.system()).ok());
    ASSERT_TRUE(db.Commit(txn).ok());
  }

  WorkloadEngine::Options options;
  options.admission.concurrency_limit = 2;
  options.slots_per_node = 2;
  WorkloadEngine engine({&db}, options, {});
  auto scan_body = [](Session*, QueryContext* ctx) {
    CLOUDIQ_ASSIGN_OR_RETURN(TableReader reader, ctx->OpenTable(7));
    return ScanTable(ctx, &reader, {"k"}).status();
  };
  constexpr int kPerTenant = 3;
  const std::vector<std::string> tenants = {"red", "green", "blue"};
  std::vector<WorkloadEngine::Completion> done;
  std::map<std::string, int> launched;
  engine.set_completion_hook([&](const WorkloadEngine::Completion& c) {
    done.push_back(c);
    if (launched[c.tenant] < kPerTenant) {
      ++launched[c.tenant];
      engine.Submit(c.tenant,
                    c.tenant + std::to_string(launched[c.tenant]),
                    c.finish, scan_body);
    }
  });
  for (const std::string& name : tenants) {
    launched[name] = 1;
    engine.Submit(name, name + "1", 0, scan_body);
  }
  ASSERT_TRUE(engine.RunUntilIdle().ok());
  ASSERT_EQ(done.size(), tenants.size() * kPerTenant);
  ExpectStallsConserve(&env, done);

  // Real storage waits were attributed, not just CPU.
  StallProfiler& profiler = env.telemetry().profiler();
  StallProfiler::Entry grand = profiler.GrandTotal();
  EXPECT_GT(grand.ns[static_cast<int>(WaitClass::kNetworkTransfer)] +
                grand.ns[static_cast<int>(WaitClass::kBufferFill)] +
                grand.ns[static_cast<int>(WaitClass::kOcmFetch)],
            0);

  // Satellite: workload.<tenant>.stall.<class> gauges. Refreshed at each
  // completion, so a gauge may lag the final total by at most the
  // tenant's background shadow time (deferred uploads draining after its
  // last query finished) — never exceed it.
  for (const std::string& name : tenants) {
    StallProfiler::Entry total = profiler.TenantTotal(name);
    double lag_budget = static_cast<double>(total.background) * 1e-9;
    for (int i = 0; i < kNumWaitClasses; ++i) {
      double gauge =
          env.telemetry()
              .stats()
              .gauge("workload." + name + ".stall." +
                     WaitClassName(static_cast<WaitClass>(i)))
              .value();
      double final_seconds = static_cast<double>(total.ns[i]) * 1e-9;
      EXPECT_LE(gauge, final_seconds + 1e-12) << name << " class " << i;
      EXPECT_LE(final_seconds - gauge, lag_budget + 1e-12)
          << name << " class " << i;
    }
    EXPECT_GT(env.telemetry()
                  .stats()
                  .gauge("workload." + name + ".stall.cpu_exec")
                  .value(),
              0.0)
        << name;
  }
}

// Determinism satellite: the full profiled run report — stalls section
// included — is byte-identical across two identical runs.
std::string RunProfiledReport() {
  WorkloadEngine::Options options;
  options.admission.concurrency_limit = 2;
  options.slots_per_node = 2;
  EngineHarness h(options);
  const std::vector<std::string> tenants = {"red", "green", "blue"};
  for (int i = 0; i < 9; ++i) {
    h.engine->Submit(tenants[i % 3], "d" + std::to_string(i), 0.001 * i,
                     SyntheticBody(2 + i % 3));
  }
  EXPECT_TRUE(h.engine->RunUntilIdle().ok());
  RunReportInfo info;
  info.bench = "workload_test";
  info.sim_seconds = h.engine->now();
  return BuildRunReportJson(info, h.env.telemetry().stats(),
                            h.env.telemetry().ledger(),
                            h.env.telemetry().profiler());
}

TEST(WorkloadStallTest, ProfiledReportIsByteIdentical) {
  std::string first = RunProfiledReport();
  std::string second = RunProfiledReport();
  EXPECT_TRUE(first == second) << "profiled reports diverged";
  EXPECT_NE(first.find("\"stalls\""), std::string::npos);
  EXPECT_NE(first.find("\"admission_queue\""), std::string::npos);
}

// --- driver --------------------------------------------------------------

TEST(WorkloadDriverTest, RejectsEmptyLoads) {
  SimEnvironment env;
  Database db(&env, InstanceProfile::M5ad4xlarge(), SmallDbOptions());
  WorkloadEngine engine({&db}, WorkloadEngine::Options(), {});
  WorkloadDriver driver(&engine, 1);
  EXPECT_FALSE(driver.Run({}).ok());
}

}  // namespace
}  // namespace cloudiq
