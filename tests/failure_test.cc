// Failure injection across the full stack: transient object-store errors
// (absorbed by retries per §3/§4), persistent failures (transaction
// aborts, rollback leaves no garbage), and a flaky local SSD under the
// OCM (ignored per §4).

#include <gtest/gtest.h>

#include "common/random.h"
#include "engine/database.h"
#include "exec/executor.h"
#include "multiplex/multiplex.h"
#include "workload/workload_engine.h"

namespace cloudiq {
namespace {

TableSchema KvSchema(uint64_t table_id) {
  TableSchema schema;
  schema.name = "t" + std::to_string(table_id);
  schema.table_id = table_id;
  schema.columns = {{"k", ColumnType::kInt64},
                    {"v", ColumnType::kString}};
  return schema;
}

Batch MakeRows(int64_t n) {
  Batch batch;
  batch.AddColumn("k", {ColumnType::kInt64, {}, {}, {}});
  batch.AddColumn("v", {ColumnType::kString, {}, {}, {}});
  for (int64_t i = 0; i < n; ++i) {
    batch.columns[0].ints.push_back(i);
    batch.columns[1].strings.push_back("value-" + std::to_string(i % 101));
  }
  return batch;
}

TEST(FailureInjectionTest, TransientStoreErrorsAbsorbedByRetries) {
  ObjectStoreOptions store_options;
  store_options.transient_error_rate = 0.25;  // 1 in 4 requests fails
  SimEnvironment env(store_options);
  Database::Options options;
  options.user_storage = UserStorage::kObjectStore;
  options.page_size = 4096;  // many pages -> failures are certain
  Database db(&env, InstanceProfile::M5ad4xlarge(), options);

  Transaction* txn = db.Begin();
  TableLoader loader = db.NewTableLoader(txn, KvSchema(1));
  ASSERT_TRUE(loader.Append(MakeRows(20000).columns).ok());
  ASSERT_TRUE(loader.Finish(db.system()).ok());
  ASSERT_TRUE(db.Commit(txn).ok());
  EXPECT_GT(env.object_store().stats().puts, 50u);
  EXPECT_GT(db.storage().object_io().stats().transient_retries, 0u);

  // Reads also ride through the error rate.
  Transaction* rtxn = db.Begin();
  QueryContext ctx = db.NewQueryContext(rtxn);
  Result<TableReader> reader = ctx.OpenTable(1);
  ASSERT_TRUE(reader.ok());
  Result<Batch> rows = ScanTable(&ctx, &*reader, {"k", "v"});
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->rows(), 20000u);
  ASSERT_TRUE(db.Commit(rtxn).ok());
}

TEST(FailureInjectionTest, PersistentFailureAbortsAndRollbackIsClean) {
  ObjectStoreOptions store_options;
  store_options.transient_error_rate = 0.95;  // retries will exhaust
  SimEnvironment env(store_options);
  Database::Options options;
  options.user_storage = UserStorage::kObjectStore;
  options.page_size = 16384;
  StorageSubsystem::Options storage_opts;
  storage_opts.object_io.max_transient_retries = 1;
  options.storage = storage_opts;
  options.enable_ocm = false;  // direct PUT path
  Database db(&env, InstanceProfile::M5ad4xlarge(), options);

  Transaction* txn = db.Begin();
  TableLoader loader = db.NewTableLoader(txn, KvSchema(1));
  ASSERT_TRUE(loader.Append(MakeRows(4000).columns).ok());
  ASSERT_TRUE(loader.Finish(db.system()).ok());
  // The commit must fail with Aborted ("after a pre-determined number of
  // failures of the same page, the transaction is rolled back", §4).
  Status commit_status = db.Commit(txn);
  ASSERT_FALSE(commit_status.ok());
  EXPECT_TRUE(commit_status.IsAborted()) << commit_status.ToString();
  ASSERT_TRUE(db.Rollback(txn).ok());

  // Any partially uploaded objects are deleted by the rollback; the
  // catalog never learned about the table.
  EXPECT_EQ(env.object_store().LiveObjectCount(), 0u);
  EXPECT_FALSE(db.txn_mgr().catalog().Contains(
      TableLoader::ObjectIdFor(1, 0, 0)));
}

TEST(FailureInjectionTest, FlakySsdNeverCorruptsResults) {
  SimEnvironment env;
  Database::Options options;
  options.user_storage = UserStorage::kObjectStore;
  options.page_size = 16384;
  Database db(&env, InstanceProfile::M5ad4xlarge(), options);
  // Every local cache write fails from the start; the OCM must ignore
  // the errors (§4) and stay correct end to end.
  db.node().ssd().set_write_error_rate(1.0);

  Transaction* txn = db.Begin();
  TableLoader loader = db.NewTableLoader(txn, KvSchema(1));
  ASSERT_TRUE(loader.Append(MakeRows(3000).columns).ok());
  ASSERT_TRUE(loader.Finish(db.system()).ok());
  ASSERT_TRUE(db.Commit(txn).ok());

  Transaction* rtxn = db.Begin();
  QueryContext ctx = db.NewQueryContext(rtxn);
  Result<TableReader> reader = ctx.OpenTable(1);
  ASSERT_TRUE(reader.ok());
  Result<Batch> rows = ScanTable(&ctx, &*reader, {"k", "v"});
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->rows(), 3000u);
  ASSERT_TRUE(db.Commit(rtxn).ok());
  ASSERT_NE(db.ocm(), nullptr);
  EXPECT_GT(db.ocm()->stats().local_write_errors_ignored, 0u);
}

TEST(FailureInjectionTest, ErrorsDuringRecoveryRetryToo) {
  // Crash recovery's orphan polling runs against the same flaky store.
  ObjectStoreOptions store_options;
  store_options.transient_error_rate = 0.2;
  SimEnvironment env(store_options);
  Database::Options options;
  options.user_storage = UserStorage::kObjectStore;
  options.page_size = 16384;
  Database db(&env, InstanceProfile::M5ad4xlarge(), options);

  Transaction* txn = db.Begin();
  TableLoader loader = db.NewTableLoader(txn, KvSchema(1));
  ASSERT_TRUE(loader.Append(MakeRows(2000).columns).ok());
  ASSERT_TRUE(loader.Finish(db.system()).ok());
  ASSERT_TRUE(db.Commit(txn).ok());
  ASSERT_TRUE(db.Checkpoint().ok());

  ASSERT_TRUE(db.CrashAndRecover().ok());
  Transaction* rtxn = db.Begin();
  QueryContext ctx = db.NewQueryContext(rtxn);
  Result<TableReader> reader = ctx.OpenTable(1);
  ASSERT_TRUE(reader.ok());
  Result<Batch> rows = ScanTable(&ctx, &*reader, {"k"});
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->rows(), 2000u);
  ASSERT_TRUE(db.Commit(rtxn).ok());
}

// --- randomized writer kill under concurrent load --------------------------

struct KillRunOutcome {
  SimTime start = 0;
  SimTime finish = 0;
  uint64_t completed = 0;
  uint64_t not_completed = 0;  // failed or shed
  uint64_t orphans_collected = 0;
  SimTime killed_at = -1;
  uint64_t committed_live = 0;    // live objects after the commit
  uint64_t live_after_run = 0;    // live objects once everything drains
  uint64_t keep_rows_after = 0;   // rows readable on the restarted writer
};

// One run of the kill scenario: a multiplex whose writer holds an
// in-flight (flushed, uncommitted) load while three tenants run a
// concurrent scan workload on the reader node. At `kill_offset` sim
// seconds into the workload the writer crashes and restarts (§3.3
// recovery). kill_offset < 0 runs the failure-free control that measures
// the workload span the seeded kill time is drawn from.
KillRunOutcome RunWriterKillScenario(double kill_offset) {
  KillRunOutcome out;
  SimEnvironment env;
  Multiplex::Options options;
  options.db.user_storage = UserStorage::kObjectStore;
  options.db.page_size = 16384;
  Multiplex mx(&env, /*secondary_count=*/2, options);
  Database& writer = mx.secondary(0);

  // Committed data the crash must not lose.
  Transaction* txn = writer.Begin();
  TableLoader keep = writer.NewTableLoader(txn, KvSchema(60));
  EXPECT_TRUE(keep.Append(MakeRows(4000).columns).ok());
  EXPECT_TRUE(keep.Finish(writer.system()).ok());
  EXPECT_TRUE(writer.Commit(txn).ok());
  EXPECT_TRUE(mx.SyncCatalogs().ok());
  out.committed_live = env.object_store().LiveObjectCount();

  // An in-flight load with pages already uploaded: the orphans the crash
  // strands.
  Transaction* dtxn = writer.Begin();
  TableLoader doomed = writer.NewTableLoader(dtxn, KvSchema(61));
  EXPECT_TRUE(doomed.Append(MakeRows(4000).columns).ok());
  EXPECT_TRUE(doomed.Finish(writer.system()).ok());
  EXPECT_TRUE(writer.txn_mgr().buffer().FlushTxn(dtxn->id).ok());

  // Concurrent workload on the reader node: three tenants interleaving
  // scans of the committed table over the shared object store.
  WorkloadEngine::Options engine_options;
  engine_options.admission.concurrency_limit = 4;
  engine_options.slots_per_node = 2;
  WorkloadEngine engine({&mx.secondary(1)}, engine_options, {});
  const SimTime start = engine.now();
  engine.set_event_hook([&](SimTime now) {
    if (kill_offset < 0 || out.killed_at >= 0) return;
    if (now - start < kill_offset) return;
    out.killed_at = now;
    Result<uint64_t> collected = mx.RestartSecondary(0);
    EXPECT_TRUE(collected.ok()) << collected.status().ToString();
    if (collected.ok()) out.orphans_collected = *collected;
  });
  auto scan_body = [](Session*, QueryContext* ctx) -> Status {
    Result<TableReader> reader = ctx->OpenTable(60);
    CLOUDIQ_RETURN_IF_ERROR(reader.status());
    Result<Batch> rows = ScanTable(ctx, &*reader, {"k", "v"});
    CLOUDIQ_RETURN_IF_ERROR(rows.status());
    if (rows->rows() != 4000u) {
      return Status::Corruption("scan during writer failure lost rows");
    }
    return Status::Ok();
  };
  for (const char* tenant : {"red", "green", "blue"}) {
    for (int n = 0; n < 4; ++n) {
      engine.Submit(tenant, "scan", start, scan_body);
    }
  }
  EXPECT_TRUE(engine.RunUntilIdle().ok());
  out.start = start;
  out.finish = engine.now();
  for (const char* tenant : {"red", "green", "blue"}) {
    WorkloadEngine::TenantCounts counts = engine.Counts(tenant);
    out.completed += counts.completed;
    out.not_completed += counts.failed + counts.Shed();
  }
  out.live_after_run = env.object_store().LiveObjectCount();

  // Committed data still readable on the (possibly restarted) writer.
  Transaction* rtxn = writer.Begin();
  QueryContext ctx = writer.NewQueryContext(rtxn);
  Result<TableReader> reader = ctx.OpenTable(60);
  if (reader.ok()) {
    Result<Batch> rows = ScanTable(&ctx, &*reader, {"k", "v"});
    if (rows.ok()) out.keep_rows_after = rows->rows();
  }
  EXPECT_TRUE(writer.Commit(rtxn).ok());
  return out;
}

TEST(FailureInjectionTest, SeededWriterKillDuringConcurrentWorkload) {
  // Failure-free control pins the (deterministic) workload span; each
  // seed then draws a kill time strictly inside it, so one seed replays
  // one exact crash schedule.
  KillRunOutcome base = RunWriterKillScenario(-1);
  ASSERT_EQ(base.completed, 12u);
  ASSERT_EQ(base.not_completed, 0u);
  const double span = base.finish - base.start;
  ASSERT_GT(span, 0);

  for (uint64_t seed : {uint64_t{11}, uint64_t{29}, uint64_t{4021}}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Rng rng(seed);
    const double kill_offset = (0.1 + 0.8 * rng.NextDouble()) * span;
    KillRunOutcome out = RunWriterKillScenario(kill_offset);

    // The kill really happened mid-workload.
    ASSERT_GE(out.killed_at, out.start);
    EXPECT_LE(out.killed_at, out.finish);
    // Recovery collected the in-flight upload's orphans and only those:
    // the store holds exactly the committed objects again.
    EXPECT_GT(out.orphans_collected, 0u);
    EXPECT_EQ(out.live_after_run, out.committed_live);
    EXPECT_EQ(out.keep_rows_after, 4000u);
    // The concurrent workload rode through the writer crash untouched.
    EXPECT_EQ(out.completed, 12u);
    EXPECT_EQ(out.not_completed, 0u);
  }
}

}  // namespace
}  // namespace cloudiq
