// Failure injection across the full stack: transient object-store errors
// (absorbed by retries per §3/§4), persistent failures (transaction
// aborts, rollback leaves no garbage), and a flaky local SSD under the
// OCM (ignored per §4).

#include <gtest/gtest.h>

#include "engine/database.h"
#include "exec/executor.h"

namespace cloudiq {
namespace {

TableSchema KvSchema(uint64_t table_id) {
  TableSchema schema;
  schema.name = "t" + std::to_string(table_id);
  schema.table_id = table_id;
  schema.columns = {{"k", ColumnType::kInt64},
                    {"v", ColumnType::kString}};
  return schema;
}

Batch MakeRows(int64_t n) {
  Batch batch;
  batch.AddColumn("k", {ColumnType::kInt64, {}, {}, {}});
  batch.AddColumn("v", {ColumnType::kString, {}, {}, {}});
  for (int64_t i = 0; i < n; ++i) {
    batch.columns[0].ints.push_back(i);
    batch.columns[1].strings.push_back("value-" + std::to_string(i % 101));
  }
  return batch;
}

TEST(FailureInjectionTest, TransientStoreErrorsAbsorbedByRetries) {
  ObjectStoreOptions store_options;
  store_options.transient_error_rate = 0.25;  // 1 in 4 requests fails
  SimEnvironment env(store_options);
  Database::Options options;
  options.user_storage = UserStorage::kObjectStore;
  options.page_size = 4096;  // many pages -> failures are certain
  Database db(&env, InstanceProfile::M5ad4xlarge(), options);

  Transaction* txn = db.Begin();
  TableLoader loader = db.NewTableLoader(txn, KvSchema(1));
  ASSERT_TRUE(loader.Append(MakeRows(20000).columns).ok());
  ASSERT_TRUE(loader.Finish(db.system()).ok());
  ASSERT_TRUE(db.Commit(txn).ok());
  EXPECT_GT(env.object_store().stats().puts, 50u);
  EXPECT_GT(db.storage().object_io().stats().transient_retries, 0u);

  // Reads also ride through the error rate.
  Transaction* rtxn = db.Begin();
  QueryContext ctx = db.NewQueryContext(rtxn);
  Result<TableReader> reader = ctx.OpenTable(1);
  ASSERT_TRUE(reader.ok());
  Result<Batch> rows = ScanTable(&ctx, &*reader, {"k", "v"});
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->rows(), 20000u);
  ASSERT_TRUE(db.Commit(rtxn).ok());
}

TEST(FailureInjectionTest, PersistentFailureAbortsAndRollbackIsClean) {
  ObjectStoreOptions store_options;
  store_options.transient_error_rate = 0.95;  // retries will exhaust
  SimEnvironment env(store_options);
  Database::Options options;
  options.user_storage = UserStorage::kObjectStore;
  options.page_size = 16384;
  StorageSubsystem::Options storage_opts;
  storage_opts.object_io.max_transient_retries = 1;
  options.storage = storage_opts;
  options.enable_ocm = false;  // direct PUT path
  Database db(&env, InstanceProfile::M5ad4xlarge(), options);

  Transaction* txn = db.Begin();
  TableLoader loader = db.NewTableLoader(txn, KvSchema(1));
  ASSERT_TRUE(loader.Append(MakeRows(4000).columns).ok());
  ASSERT_TRUE(loader.Finish(db.system()).ok());
  // The commit must fail with Aborted ("after a pre-determined number of
  // failures of the same page, the transaction is rolled back", §4).
  Status commit_status = db.Commit(txn);
  ASSERT_FALSE(commit_status.ok());
  EXPECT_TRUE(commit_status.IsAborted()) << commit_status.ToString();
  ASSERT_TRUE(db.Rollback(txn).ok());

  // Any partially uploaded objects are deleted by the rollback; the
  // catalog never learned about the table.
  EXPECT_EQ(env.object_store().LiveObjectCount(), 0u);
  EXPECT_FALSE(db.txn_mgr().catalog().Contains(
      TableLoader::ObjectIdFor(1, 0, 0)));
}

TEST(FailureInjectionTest, FlakySsdNeverCorruptsResults) {
  SimEnvironment env;
  Database::Options options;
  options.user_storage = UserStorage::kObjectStore;
  options.page_size = 16384;
  Database db(&env, InstanceProfile::M5ad4xlarge(), options);
  // Every local cache write fails from the start; the OCM must ignore
  // the errors (§4) and stay correct end to end.
  db.node().ssd().set_write_error_rate(1.0);

  Transaction* txn = db.Begin();
  TableLoader loader = db.NewTableLoader(txn, KvSchema(1));
  ASSERT_TRUE(loader.Append(MakeRows(3000).columns).ok());
  ASSERT_TRUE(loader.Finish(db.system()).ok());
  ASSERT_TRUE(db.Commit(txn).ok());

  Transaction* rtxn = db.Begin();
  QueryContext ctx = db.NewQueryContext(rtxn);
  Result<TableReader> reader = ctx.OpenTable(1);
  ASSERT_TRUE(reader.ok());
  Result<Batch> rows = ScanTable(&ctx, &*reader, {"k", "v"});
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->rows(), 3000u);
  ASSERT_TRUE(db.Commit(rtxn).ok());
  ASSERT_NE(db.ocm(), nullptr);
  EXPECT_GT(db.ocm()->stats().local_write_errors_ignored, 0u);
}

TEST(FailureInjectionTest, ErrorsDuringRecoveryRetryToo) {
  // Crash recovery's orphan polling runs against the same flaky store.
  ObjectStoreOptions store_options;
  store_options.transient_error_rate = 0.2;
  SimEnvironment env(store_options);
  Database::Options options;
  options.user_storage = UserStorage::kObjectStore;
  options.page_size = 16384;
  Database db(&env, InstanceProfile::M5ad4xlarge(), options);

  Transaction* txn = db.Begin();
  TableLoader loader = db.NewTableLoader(txn, KvSchema(1));
  ASSERT_TRUE(loader.Append(MakeRows(2000).columns).ok());
  ASSERT_TRUE(loader.Finish(db.system()).ok());
  ASSERT_TRUE(db.Commit(txn).ok());
  ASSERT_TRUE(db.Checkpoint().ok());

  ASSERT_TRUE(db.CrashAndRecover().ok());
  Transaction* rtxn = db.Begin();
  QueryContext ctx = db.NewQueryContext(rtxn);
  Result<TableReader> reader = ctx.OpenTable(1);
  ASSERT_TRUE(reader.ok());
  Result<Batch> rows = ScanTable(&ctx, &*reader, {"k"});
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->rows(), 2000u);
  ASSERT_TRUE(db.Commit(rtxn).ok());
}

}  // namespace
}  // namespace cloudiq
