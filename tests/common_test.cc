#include <gtest/gtest.h>

#include <set>

#include "common/bitmap.h"
#include "common/coding.h"
#include "common/interval_set.h"
#include "common/random.h"
#include "common/result.h"
#include "common/status.h"

namespace cloudiq {
namespace {

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, CodesAndMessages) {
  Status st = Status::NotFound("key 17");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsNotFound());
  EXPECT_EQ(st.ToString(), "NOT_FOUND: key 17");
  EXPECT_TRUE(Status::Aborted("x").IsAborted());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::Busy("x").IsBusy());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::IoError("x").IsIoError());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
}

TEST(ResultTest, ValueAndError) {
  Result<int> ok(42);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);

  Result<int> err(Status::IoError("disk on fire"));
  ASSERT_FALSE(err.ok());
  EXPECT_TRUE(err.status().IsIoError());
}

Result<int> Half(int n) {
  if (n % 2 != 0) return Status::InvalidArgument("odd");
  return n / 2;
}

Result<int> Quarter(int n) {
  CLOUDIQ_ASSIGN_OR_RETURN(int h, Half(n));
  return Half(h);
}

TEST(ResultTest, AssignOrReturnMacro) {
  Result<int> q = Quarter(8);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(*q, 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2 = 3 is odd
}

TEST(BitmapTest, SetClearTest) {
  Bitmap bm;
  EXPECT_FALSE(bm.Test(100));
  bm.Set(100);
  EXPECT_TRUE(bm.Test(100));
  EXPECT_FALSE(bm.Test(99));
  bm.Clear(100);
  EXPECT_FALSE(bm.Test(100));
  EXPECT_EQ(bm.CountSet(), 0u);
}

TEST(BitmapTest, Ranges) {
  Bitmap bm;
  bm.SetRange(10, 20);
  EXPECT_EQ(bm.CountSet(), 10u);
  EXPECT_TRUE(bm.Test(10));
  EXPECT_TRUE(bm.Test(19));
  EXPECT_FALSE(bm.Test(20));
  bm.ClearRange(12, 15);
  EXPECT_EQ(bm.CountSet(), 7u);
  EXPECT_EQ(bm.SetBits(),
            (std::vector<uint64_t>{10, 11, 15, 16, 17, 18, 19}));
}

TEST(BitmapTest, FindClearRun) {
  Bitmap bm;
  bm.SetRange(0, 5);
  bm.SetRange(8, 10);
  EXPECT_EQ(bm.FindClearRun(0, 3), 5u);   // 5,6,7 clear
  EXPECT_EQ(bm.FindClearRun(0, 4), 10u);  // must skip to after 8-9
  EXPECT_EQ(bm.FindClearRun(6, 2), 6u);
}

TEST(BitmapTest, FindClearRunGrowsPastEnd) {
  Bitmap bm(8);
  bm.SetRange(0, 8);
  EXPECT_EQ(bm.FindClearRun(0, 2), 8u);
}

TEST(BitmapTest, SerializeRoundTrip) {
  Bitmap bm;
  bm.Set(0);
  bm.Set(63);
  bm.Set(64);
  bm.Set(1000);
  Bitmap back = Bitmap::Deserialize(bm.Serialize());
  EXPECT_TRUE(bm == back);
  EXPECT_EQ(back.CountSet(), 4u);
}

TEST(BitmapTest, UnionAndSubtract) {
  Bitmap a, b;
  a.SetRange(0, 10);
  b.SetRange(5, 15);
  a.UnionWith(b);
  EXPECT_EQ(a.CountSet(), 15u);
  a.SubtractFrom(b);
  EXPECT_EQ(a.CountSet(), 5u);
  EXPECT_TRUE(a.Test(4));
  EXPECT_FALSE(a.Test(5));
}

TEST(BitmapTest, EqualityIgnoresCapacity) {
  Bitmap a(10), b(1000);
  a.Set(3);
  b.Set(3);
  EXPECT_TRUE(a == b);
  b.Set(999);
  EXPECT_FALSE(a == b);
}

TEST(IntervalSetTest, InsertCoalesces) {
  IntervalSet set;
  set.InsertRange(10, 20);
  set.InsertRange(20, 30);  // adjacent -> coalesce
  EXPECT_EQ(set.IntervalCount(), 1u);
  EXPECT_EQ(set.Count(), 20u);
  set.InsertRange(40, 50);
  EXPECT_EQ(set.IntervalCount(), 2u);
  set.InsertRange(25, 45);  // bridges the gap
  EXPECT_EQ(set.IntervalCount(), 1u);
  EXPECT_EQ(set.Count(), 40u);
  EXPECT_EQ(set.Min(), 10u);
  EXPECT_EQ(set.Max(), 49u);
}

TEST(IntervalSetTest, EraseSplits) {
  IntervalSet set;
  set.InsertRange(0, 100);
  set.EraseRange(40, 60);
  EXPECT_EQ(set.IntervalCount(), 2u);
  EXPECT_EQ(set.Count(), 80u);
  EXPECT_TRUE(set.Contains(39));
  EXPECT_FALSE(set.Contains(40));
  EXPECT_FALSE(set.Contains(59));
  EXPECT_TRUE(set.Contains(60));
}

TEST(IntervalSetTest, EraseAcrossIntervals) {
  IntervalSet set;
  set.InsertRange(0, 10);
  set.InsertRange(20, 30);
  set.InsertRange(40, 50);
  set.EraseRange(5, 45);
  EXPECT_EQ(set.Count(), 10u);
  EXPECT_TRUE(set.Contains(4));
  EXPECT_TRUE(set.Contains(45));
  EXPECT_FALSE(set.Contains(25));
}

TEST(IntervalSetTest, SingletonOps) {
  IntervalSet set;
  set.Insert(7);
  set.Insert(8);
  set.Insert(6);
  EXPECT_EQ(set.IntervalCount(), 1u);
  set.Erase(7);
  EXPECT_EQ(set.IntervalCount(), 2u);
  EXPECT_EQ(set.Values(), (std::vector<uint64_t>{6, 8}));
}

TEST(IntervalSetTest, SerializeRoundTrip) {
  IntervalSet set;
  set.InsertRange(uint64_t{1} << 63, (uint64_t{1} << 63) + 100);
  set.InsertRange((uint64_t{1} << 63) + 200, (uint64_t{1} << 63) + 250);
  IntervalSet back = IntervalSet::Deserialize(set.Serialize());
  EXPECT_TRUE(set == back);
}

TEST(IntervalSetTest, HighRangeKeys) {
  // Object keys live in [2^63, 2^64); make sure no arithmetic trips.
  IntervalSet set;
  uint64_t base = uint64_t{1} << 63;
  set.InsertRange(base, base + 10);
  EXPECT_TRUE(set.Contains(base + 9));
  EXPECT_EQ(set.Max(), base + 9);
}

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(12345), b(12345);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, UniformBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(10), 10u);
    int64_t v = rng.UniformRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ExponentialMean) {
  Rng rng(99);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(2.0);
  EXPECT_NEAR(sum / n, 2.0, 0.1);
}

TEST(HashKeyPrefixTest, SpreadsConsecutiveKeys) {
  // Consecutive keys must land in distinct prefixes (the whole point of
  // the Mersenne-Twister-style prefix hash, §3.1).
  std::set<uint64_t> prefixes;
  uint64_t base = uint64_t{1} << 63;
  for (uint64_t i = 0; i < 1000; ++i) {
    prefixes.insert(HashKeyPrefix(base + i));
  }
  EXPECT_EQ(prefixes.size(), 1000u);
}

TEST(HashKeyPrefixTest, FormatContainsPrefixAndKey) {
  uint64_t key = (uint64_t{1} << 63) + 0xabc;
  std::string s = FormatObjectKey(key);
  EXPECT_EQ(s.size(), 33u);  // 16 hex + '/' + 16 hex
  EXPECT_EQ(s[16], '/');
  EXPECT_EQ(s.substr(17), "8000000000000abc");
}

TEST(CodingTest, RoundTrip) {
  std::vector<uint8_t> buf;
  PutU64(buf, 0xdeadbeefcafebabeULL);
  PutU32(buf, 17);
  PutI64(buf, -42);
  PutDouble(buf, 3.25);
  PutString(buf, "hello");
  ByteReader reader(buf);
  EXPECT_EQ(reader.GetU64(), 0xdeadbeefcafebabeULL);
  EXPECT_EQ(reader.GetU32(), 17u);
  EXPECT_EQ(reader.GetI64(), -42);
  EXPECT_DOUBLE_EQ(reader.GetDouble(), 3.25);
  EXPECT_EQ(reader.GetString(), "hello");
  EXPECT_EQ(reader.remaining(), 0u);
  EXPECT_FALSE(reader.overflow());
}

TEST(CodingTest, OverflowLatches) {
  std::vector<uint8_t> buf;
  PutU32(buf, 1);
  ByteReader reader(buf);
  reader.GetU64();
  EXPECT_TRUE(reader.overflow());
}

TEST(CodingTest, ChecksumDiffers) {
  std::vector<uint8_t> a{1, 2, 3};
  std::vector<uint8_t> b{1, 2, 4};
  EXPECT_NE(Checksum64(a.data(), a.size()), Checksum64(b.data(), b.size()));
}

}  // namespace
}  // namespace cloudiq
