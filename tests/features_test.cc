// Tests for the extension features: read-only snapshot views (§8 future
// work), latency-aware OCM re-routing (§6 future work), reader-node
// enforcement (§2), the read-only commit fast path, and engine-level
// table-metadata caching.

#include <gtest/gtest.h>

#include "engine/consistency_check.h"
#include "engine/database.h"
#include "engine/metrics.h"
#include "engine/snapshot_view.h"
#include "exec/executor.h"
#include "multiplex/multiplex.h"
#include "tests/test_util.h"

namespace cloudiq {
namespace {

TableSchema KvSchema(uint64_t table_id, const char* name) {
  TableSchema schema;
  schema.name = name;
  schema.table_id = table_id;
  schema.columns = {{"k", ColumnType::kInt64},
                    {"v", ColumnType::kInt64}};
  return schema;
}

Status LoadKv(Database* db, uint64_t table_id, const char* name,
              int64_t rows, int64_t value_base) {
  Transaction* txn = db->Begin();
  TableLoader loader = db->NewTableLoader(txn, KvSchema(table_id, name));
  Batch batch;
  batch.AddColumn("k", {ColumnType::kInt64, {}, {}, {}});
  batch.AddColumn("v", {ColumnType::kInt64, {}, {}, {}});
  for (int64_t i = 0; i < rows; ++i) {
    batch.columns[0].ints.push_back(i);
    batch.columns[1].ints.push_back(value_base + i);
  }
  CLOUDIQ_RETURN_IF_ERROR(loader.Append(batch.columns));
  CLOUDIQ_RETURN_IF_ERROR(loader.Finish(db->system()).status());
  return db->Commit(txn);
}

int64_t SumColumn(QueryContext* ctx, uint64_t table_id) {
  Result<TableReader> reader = ctx->OpenTable(table_id);
  EXPECT_TRUE(reader.ok()) << reader.status().ToString();
  Result<Batch> rows = ScanTable(ctx, &*reader, {"v"});
  EXPECT_TRUE(rows.ok()) << rows.status().ToString();
  int64_t sum = 0;
  for (int64_t v : rows->column("v").ints) sum += v;
  return sum;
}

TEST(SnapshotViewTest, SeesPastWhileLiveMovesOn) {
  SimEnvironment env;
  Database::Options options;
  options.user_storage = UserStorage::kObjectStore;
  Database db(&env, InstanceProfile::M5ad4xlarge(), options);

  ASSERT_TRUE(LoadKv(&db, 1, "t", 5000, 0).ok());
  Result<SnapshotManager::SnapshotInfo> snap = db.TakeSnapshot();
  ASSERT_TRUE(snap.ok());

  // Live database moves on: replace the table's contents and GC the old
  // version (which lands in the snapshot manager's retention queue).
  Transaction* txn = db.Begin();
  Result<StorageObject*> obj = db.txn_mgr().OpenForWrite(
      txn, TableLoader::ObjectIdFor(1, 0, 1));
  ASSERT_TRUE(obj.ok());
  ASSERT_TRUE((*obj)->WritePage(0, std::vector<uint8_t>(64, 1)).ok());
  ASSERT_TRUE(db.Commit(txn).ok());
  ASSERT_TRUE(db.RunGarbageCollection().ok());
  ASSERT_TRUE(LoadKv(&db, 2, "t2", 100, 0).ok());

  // The view serves the snapshot's world: table 1's original contents,
  // and no table 2.
  Result<std::unique_ptr<SnapshotView>> view =
      SnapshotView::Open(&db, snap->id);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  EXPECT_EQ((*view)->info().id, snap->id);
  QueryContext view_ctx = (*view)->NewQueryContext();
  EXPECT_EQ(SumColumn(&view_ctx, 1), 5000LL * 4999 / 2);
  EXPECT_TRUE((*view)->OpenTable(2).status().IsNotFound());

  // Meanwhile the live catalog still has both tables.
  Transaction* live_txn = db.Begin();
  QueryContext live_ctx = db.NewQueryContext(live_txn);
  EXPECT_TRUE(live_ctx.OpenTable(2).ok());
  ASSERT_TRUE(db.Commit(live_txn).ok());
}

TEST(SnapshotViewTest, RequiresCloudDbSpace) {
  SimEnvironment env;
  Database::Options options;
  options.user_storage = UserStorage::kEbs;
  Database db(&env, InstanceProfile::M5ad4xlarge(), options);
  ASSERT_TRUE(LoadKv(&db, 1, "t", 100, 0).ok());
  Result<SnapshotManager::SnapshotInfo> snap = db.TakeSnapshot();
  ASSERT_TRUE(snap.ok());
  EXPECT_TRUE(
      SnapshotView::Open(&db, snap->id).status().IsNotSupported());
}

TEST(SnapshotViewTest, ExpiredSnapshotRejected) {
  SimEnvironment env;
  Database::Options options;
  options.user_storage = UserStorage::kObjectStore;
  options.snapshot_retention_seconds = 100;
  Database db(&env, InstanceProfile::M5ad4xlarge(), options);
  ASSERT_TRUE(LoadKv(&db, 1, "t", 100, 0).ok());
  Result<SnapshotManager::SnapshotInfo> snap = db.TakeSnapshot();
  ASSERT_TRUE(snap.ok());
  db.node().clock().Advance(200);
  EXPECT_TRUE(SnapshotView::Open(&db, snap->id)
                  .status()
                  .IsFailedPrecondition());
  EXPECT_TRUE(SnapshotView::Open(&db, 999).status().IsNotFound());
}

TEST(OcmRerouteTest, PressureReroutesHitsToObjectStore) {
  testing_util::SingleNodeHarness h;
  ObjectCacheManager::Options opts;
  opts.reroute_on_pressure = true;
  opts.reroute_backlog_seconds = 0.005;
  ObjectCacheManager ocm(h.node, &h.storage->object_io(), opts);

  // Seed a hot object (cached on SSD).
  uint64_t hot = h.key_cache->NextKey(0);
  SimTime done = 0;
  ASSERT_TRUE(ocm.Write(hot, h.MakePayload(512 * 1024, 1),
                        CloudCache::WriteMode::kWriteBack, 1, 0.0, &done)
                  .ok());
  h.node->executor().RunDue(done + 10.0);
  h.node->clock().AdvanceTo(done + 10.0);

  // Flood the SSD with asynchronous cache fills.
  std::vector<uint64_t> cold;
  for (int i = 0; i < 400; ++i) {
    uint64_t key = h.key_cache->NextKey(0);
    SimTime put_done = 0;
    ASSERT_TRUE(h.storage->object_io()
                    .Put(key, h.MakePayload(512 * 1024, 2),
                         h.node->clock().now(), &put_done)
                    .ok());
    cold.push_back(key);
  }
  h.node->clock().Advance(50);
  SimTime burst = h.node->clock().now();
  for (uint64_t key : cold) {
    ASSERT_TRUE(ocm.Read(key, burst, &done).ok());
  }
  SimTime t1 = burst + 0.1;
  h.node->executor().RunDue(t1);

  // The hit gets re-routed to the object store instead of queueing
  // behind the fill backlog: latency stays at object-store levels.
  ASSERT_TRUE(ocm.Read(hot, t1, &done).ok());
  double latency = done - t1;
  EXPECT_GT(ocm.stats().rerouted_reads, 0u);
  EXPECT_LT(latency, 0.1);  // vs the multi-hundred-ms backlog wait
}

TEST(ReaderNodeTest, ReadersCannotModify) {
  SimEnvironment env;
  Multiplex::Options options;
  options.db.user_storage = UserStorage::kObjectStore;
  options.db.page_size = 64 * 1024;
  options.writer_count = 1;  // secondary 0 writes, secondary 1 reads
  Multiplex mx(&env, 2, options);

  ASSERT_TRUE(LoadKv(&mx.secondary(0), 1, "t", 2000, 0).ok());
  ASSERT_TRUE(mx.SyncCatalogs().ok());

  Database& reader_db = mx.secondary(1);
  // Reads work...
  Transaction* read_txn = reader_db.Begin();
  QueryContext ctx = reader_db.NewQueryContext(read_txn);
  EXPECT_EQ(SumColumn(&ctx, 1), 2000LL * 1999 / 2);
  ASSERT_TRUE(reader_db.Commit(read_txn).ok());

  // ...modifications do not.
  Transaction* write_txn = reader_db.Begin();
  EXPECT_TRUE(reader_db.txn_mgr()
                  .CreateObject(write_txn, 9, reader_db.user_space())
                  .status()
                  .IsFailedPrecondition());
  EXPECT_TRUE(reader_db.txn_mgr()
                  .OpenForWrite(write_txn,
                                TableLoader::ObjectIdFor(1, 0, 0))
                  .status()
                  .IsFailedPrecondition());
  EXPECT_TRUE(reader_db.txn_mgr()
                  .DropObject(write_txn, TableLoader::ObjectIdFor(1, 0, 0))
                  .IsFailedPrecondition());
  ASSERT_TRUE(reader_db.Rollback(write_txn).ok());
}

TEST(ReadOnlyCommitTest, FastPathSkipsDurableWrites) {
  SimEnvironment env;
  Database::Options options;
  options.user_storage = UserStorage::kObjectStore;
  Database db(&env, InstanceProfile::M5ad4xlarge(), options);
  ASSERT_TRUE(LoadKv(&db, 1, "t", 1000, 0).ok());

  size_t names_before = db.system()->List().size();
  Transaction* txn = db.Begin();
  QueryContext ctx = db.NewQueryContext(txn);
  SumColumn(&ctx, 1);
  ASSERT_TRUE(db.Commit(txn).ok());
  // No RF/RB blobs, no log growth: the read-only commit left the system
  // store untouched.
  EXPECT_EQ(db.system()->List().size(), names_before);
}

TEST(ConsistencyCheckTest, CleanDatabasePasses) {
  SimEnvironment env;
  Database::Options options;
  options.user_storage = UserStorage::kObjectStore;
  options.snapshot_retention_seconds = 3600;
  Database db(&env, InstanceProfile::M5ad4xlarge(), options);
  ASSERT_TRUE(LoadKv(&db, 1, "a", 4000, 0).ok());
  ASSERT_TRUE(LoadKv(&db, 2, "b", 500, 9).ok());
  // Update table 1 so superseded versions flow to the snapshot manager.
  Transaction* txn = db.Begin();
  Result<StorageObject*> obj = db.txn_mgr().OpenForWrite(
      txn, TableLoader::ObjectIdFor(1, 0, 0));
  ASSERT_TRUE(obj.ok());
  ASSERT_TRUE((*obj)->WritePage(0, std::vector<uint8_t>(64, 1)).ok());
  ASSERT_TRUE(db.Commit(txn).ok());
  ASSERT_TRUE(db.RunGarbageCollection().ok());

  Result<ConsistencyReport> report = CheckConsistency(&db);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->ok()) << (report->problems.empty()
                                    ? ""
                                    : report->problems.front());
  EXPECT_GT(report->objects_checked, 2u);
  EXPECT_GT(report->pages_checked, 4u);
  EXPECT_EQ(report->unreadable_pages, 0u);
  EXPECT_EQ(report->leaked_objects, 0u);
}

TEST(ConsistencyCheckTest, DetectsLeakedObject) {
  SimEnvironment env;
  Database::Options options;
  options.user_storage = UserStorage::kObjectStore;
  Database db(&env, InstanceProfile::M5ad4xlarge(), options);
  ASSERT_TRUE(LoadKv(&db, 1, "a", 500, 0).ok());

  // Plant an orphan: a page-like object no catalog path reaches.
  uint64_t orphan = db.key_cache().NextKey(0);
  SimTime done = 0;
  ASSERT_TRUE(db.storage()
                  .object_io()
                  .Put(orphan, std::vector<uint8_t>(128, 7),
                       db.node().clock().now(), &done)
                  .ok());
  db.node().clock().Advance(100);  // let it become visible

  Result<ConsistencyReport> report = CheckConsistency(&db);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->ok());
  EXPECT_EQ(report->leaked_objects, 1u);
  ASSERT_FALSE(report->problems.empty());
  EXPECT_NE(report->problems.front().find("leaked"), std::string::npos);
}

TEST(MetricsTest, SnapshotReflectsActivity) {
  SimEnvironment env;
  Database::Options options;
  options.user_storage = UserStorage::kObjectStore;
  Database db(&env, InstanceProfile::M5ad4xlarge(), options);
  ASSERT_TRUE(LoadKv(&db, 1, "t", 3000, 0).ok());
  Transaction* txn = db.Begin();
  QueryContext ctx = db.NewQueryContext(txn);
  SumColumn(&ctx, 1);
  ASSERT_TRUE(db.Commit(txn).ok());
  ASSERT_TRUE(db.TakeSnapshot().ok());

  MetricsSnapshot m = CollectMetrics(&db);
  EXPECT_GT(m.s3_puts, 0u);
  EXPECT_EQ(m.s3_overwrites, 0u);
  EXPECT_EQ(m.s3_stale_reads, 0u);
  EXPECT_GT(m.pages_written, 0u);
  EXPECT_GT(m.commits, 1u);
  EXPECT_EQ(m.snapshots, 1u);
  EXPECT_TRUE(m.ocm_enabled);
  EXPECT_GT(m.max_allocated_key, kCloudKeyBase);
  EXPECT_GT(m.sim_seconds, 0.0);
  EXPECT_GT(m.s3_monthly_storage_usd, 0.0);

  std::string report = FormatMetrics(m);
  EXPECT_NE(report.find("object store"), std::string::npos);
  EXPECT_NE(report.find("transactions"), std::string::npos);
  EXPECT_NE(report.find("snapshots"), std::string::npos);
  EXPECT_NE(report.find("stale_reads=0"), std::string::npos);
}

TEST(MetaCacheTest, SecondOpenIsFree) {
  SimEnvironment env;
  Database::Options options;
  options.user_storage = UserStorage::kObjectStore;
  Database db(&env, InstanceProfile::M5ad4xlarge(), options);
  ASSERT_TRUE(LoadKv(&db, 1, "t", 1000, 0).ok());

  Transaction* txn = db.Begin();
  ASSERT_TRUE(db.OpenTable(txn, 1).ok());  // cold: hits the system store
  SimTime before = db.node().clock().now();
  ASSERT_TRUE(db.OpenTable(txn, 1).ok());  // cached
  EXPECT_DOUBLE_EQ(db.node().clock().now(), before);
  ASSERT_TRUE(db.Commit(txn).ok());

  // Recovery invalidates the cache (the catalog may have moved).
  ASSERT_TRUE(db.Checkpoint().ok());
  ASSERT_TRUE(db.CrashAndRecover().ok());
  Transaction* txn2 = db.Begin();
  before = db.node().clock().now();
  ASSERT_TRUE(db.OpenTable(txn2, 1).ok());
  EXPECT_GT(db.node().clock().now(), before);  // re-read from system store
  ASSERT_TRUE(db.Commit(txn2).ok());
}

}  // namespace
}  // namespace cloudiq
