#include <gtest/gtest.h>

#include "snapshot/snapshot_manager.h"
#include "tests/test_util.h"
#include "txn/transaction_manager.h"

namespace cloudiq {
namespace {

using testing_util::SingleNodeHarness;

class SnapshotTest : public ::testing::Test {
 protected:
  SnapshotTest() {
    TransactionManager::Options opts;
    opts.blockmap_fanout = 4;
    opts.buffer_capacity_bytes = 1 << 20;
    txn_mgr_ = std::make_unique<TransactionManager>(h_.storage.get(),
                                                    &h_.system, opts);
    txn_mgr_->set_commit_listener(
        [this](NodeId node, const IntervalSet& keys) {
          h_.keygen.OnTransactionCommitted(node, keys);
        });
    SnapshotManager::Options snap_opts;
    snap_opts.retention_seconds = 3600;
    snap_mgr_ = std::make_unique<SnapshotManager>(
        h_.node, &h_.storage->object_io(), &h_.env.object_store(),
        snap_opts);
    h_.storage->set_delete_interceptor(
        [this](uint64_t key) { return snap_mgr_->OnPageDropped(key); });
  }

  void LoadObject(uint64_t object_id, int n, uint8_t seed) {
    Transaction* txn = txn_mgr_->Begin();
    Result<StorageObject*> obj =
        txn_mgr_->CreateObject(txn, object_id, h_.cloud_space);
    ASSERT_TRUE(obj.ok());
    for (int i = 0; i < n; ++i) {
      ASSERT_TRUE((*obj)->AppendPage(h_.MakePayload(512, seed + i)).ok());
    }
    ASSERT_TRUE(txn_mgr_->Commit(txn).ok());
  }

  void UpdateObject(uint64_t object_id, int page, uint8_t value) {
    Transaction* txn = txn_mgr_->Begin();
    Result<StorageObject*> obj = txn_mgr_->OpenForWrite(txn, object_id);
    ASSERT_TRUE(obj.ok());
    ASSERT_TRUE((*obj)->WritePage(page, h_.MakePayload(512, value)).ok());
    ASSERT_TRUE(txn_mgr_->Commit(txn).ok());
  }

  // Takes a snapshot and applies the key-cache snapshot barrier: cached
  // ranges are discarded so post-snapshot writes use keys above the
  // recorded watermark (the invariant restore GC depends on).
  Result<SnapshotManager::SnapshotInfo> TakeSnapshot() {
    Result<SnapshotManager::SnapshotInfo> info = snap_mgr_->TakeSnapshot(
        h_.keygen.max_allocated(), {h_.system_volume});
    h_.key_cache->DiscardCachedRange();
    return info;
  }

  std::vector<uint8_t> ReadObjectPage(uint64_t object_id, int page) {
    Transaction* txn = txn_mgr_->Begin();
    Result<std::unique_ptr<StorageObject>> obj =
        txn_mgr_->OpenForRead(txn, object_id);
    EXPECT_TRUE(obj.ok());
    Result<BufferManager::PageData> data = (*obj)->ReadPage(page);
    EXPECT_TRUE(data.ok()) << data.status().ToString();
    std::vector<uint8_t> out = **data;
    EXPECT_TRUE(txn_mgr_->Commit(txn).ok());
    return out;
  }

  SingleNodeHarness h_;
  std::unique_ptr<TransactionManager> txn_mgr_;
  std::unique_ptr<SnapshotManager> snap_mgr_;
};

TEST_F(SnapshotTest, DroppedPagesAreRetainedNotDeleted) {
  LoadObject(1, 8, 0);
  uint64_t live_v1 = h_.env.object_store().LiveObjectCount();
  UpdateObject(1, 0, 99);
  ASSERT_TRUE(txn_mgr_->RunGarbageCollection().ok());
  // With the interceptor installed, superseded pages remain live on the
  // object store, owned by the snapshot manager.
  EXPECT_GE(h_.env.object_store().LiveObjectCount(), live_v1);
  EXPECT_GT(snap_mgr_->retained_page_count(), 0u);
}

TEST_F(SnapshotTest, RetentionExpiryPermanentlyDeletes) {
  LoadObject(1, 8, 0);
  UpdateObject(1, 0, 99);
  ASSERT_TRUE(txn_mgr_->RunGarbageCollection().ok());
  size_t retained = snap_mgr_->retained_page_count();
  ASSERT_GT(retained, 0u);

  // Before expiry: sweep is a no-op.
  ASSERT_TRUE(snap_mgr_->CollectExpired().ok());
  EXPECT_EQ(snap_mgr_->retained_page_count(), retained);

  // After the retention window: pages permanently deleted.
  h_.node->clock().Advance(3601);
  ASSERT_TRUE(snap_mgr_->CollectExpired().ok());
  EXPECT_EQ(snap_mgr_->retained_page_count(), 0u);
  EXPECT_EQ(snap_mgr_->pages_permanently_deleted(), retained);
}

TEST_F(SnapshotTest, SnapshotIsNearInstant) {
  LoadObject(1, 64, 0);
  Result<SnapshotManager::SnapshotInfo> info = snap_mgr_->TakeSnapshot(
      h_.keygen.max_allocated(), {h_.system_volume});
  ASSERT_TRUE(info.ok());
  // Only the small system dbspace is backed up — cloud data is not.
  EXPECT_LT(info->backup_bytes, 256 * 1024u);
  EXPECT_LT(info->duration_seconds, 1.0);
  EXPECT_LT(static_cast<double>(info->backup_bytes),
            0.2 * h_.env.object_store().LiveBytes());
}

TEST_F(SnapshotTest, PointInTimeRestoreRevertsUpdates) {
  LoadObject(1, 8, 10);
  ASSERT_TRUE(txn_mgr_->Checkpoint().ok());
  std::vector<uint8_t> v1_page0 = ReadObjectPage(1, 0);

  Result<SnapshotManager::SnapshotInfo> snap = TakeSnapshot();
  ASSERT_TRUE(snap.ok());

  // Post-snapshot work: update page 0 and GC the old version into the
  // snapshot manager's care.
  UpdateObject(1, 0, 200);
  ASSERT_TRUE(txn_mgr_->RunGarbageCollection().ok());
  EXPECT_NE(ReadObjectPage(1, 0), v1_page0);

  // Restore: bring back the system dbspace, GC keys created after the
  // snapshot, then reopen the catalog.
  Result<uint64_t> collected = snap_mgr_->Restore(
      snap->id, h_.keygen.max_allocated(), {h_.system_volume});
  ASSERT_TRUE(collected.ok()) << collected.status().ToString();
  EXPECT_GT(*collected, 0u);
  txn_mgr_->SimulateCrash();
  ASSERT_TRUE(txn_mgr_->RecoverAfterCrash().ok());

  // The pre-snapshot contents are back, bit for bit.
  EXPECT_EQ(ReadObjectPage(1, 0), v1_page0);
  for (int i = 1; i < 8; ++i) {
    EXPECT_EQ(ReadObjectPage(1, i), h_.MakePayload(512, 10 + i));
  }
}

TEST_F(SnapshotTest, RestoreGcRangeIsExactlyPostSnapshotKeys) {
  LoadObject(1, 4, 0);
  ASSERT_TRUE(txn_mgr_->Checkpoint().ok());
  uint64_t live_at_snapshot = h_.env.object_store().LiveObjectCount();
  Result<SnapshotManager::SnapshotInfo> snap = TakeSnapshot();
  ASSERT_TRUE(snap.ok());
  uint64_t backups = h_.env.object_store().LiveObjectCount() -
                     live_at_snapshot;  // manifest objects

  LoadObject(2, 16, 5);  // post-snapshot table

  Result<uint64_t> collected = snap_mgr_->Restore(
      snap->id, h_.keygen.max_allocated(), {h_.system_volume});
  ASSERT_TRUE(collected.ok());
  txn_mgr_->SimulateCrash();
  ASSERT_TRUE(txn_mgr_->RecoverAfterCrash().ok());

  // Table 2 is gone — catalog and objects.
  EXPECT_FALSE(txn_mgr_->catalog().Contains(2));
  EXPECT_TRUE(txn_mgr_->catalog().Contains(1));
  EXPECT_EQ(h_.env.object_store().LiveObjectCount(),
            live_at_snapshot + backups);
}

TEST_F(SnapshotTest, RestoreAfterRetentionFails) {
  LoadObject(1, 4, 0);
  Result<SnapshotManager::SnapshotInfo> snap = TakeSnapshot();
  ASSERT_TRUE(snap.ok());
  h_.node->clock().Advance(4000);  // past retention
  Result<uint64_t> r = snap_mgr_->Restore(
      snap->id, h_.keygen.max_allocated(), {h_.system_volume});
  EXPECT_TRUE(r.status().IsFailedPrecondition());
  EXPECT_TRUE(snap_mgr_->Restore(777, 0, {h_.system_volume})
                  .status()
                  .IsNotFound());
}

TEST_F(SnapshotTest, ExpireSnapshotsDropsBackups) {
  LoadObject(1, 4, 0);
  ASSERT_TRUE(snap_mgr_
                  ->TakeSnapshot(h_.keygen.max_allocated(),
                                 {h_.system_volume})
                  .ok());
  EXPECT_EQ(snap_mgr_->ListSnapshots().size(), 1u);
  h_.node->clock().Advance(4000);
  ASSERT_TRUE(snap_mgr_->ExpireSnapshots().ok());
  EXPECT_TRUE(snap_mgr_->ListSnapshots().empty());
}

TEST_F(SnapshotTest, FrequentSnapshotsStayCheap) {
  LoadObject(1, 32, 0);
  double total = 0;
  for (int i = 0; i < 10; ++i) {
    UpdateObject(1, i % 8, static_cast<uint8_t>(i));
    Result<SnapshotManager::SnapshotInfo> snap = TakeSnapshot();
    ASSERT_TRUE(snap.ok());
    total += snap->duration_seconds;
  }
  EXPECT_EQ(snap_mgr_->ListSnapshots().size(), 10u);
  EXPECT_LT(total / 10, 1.0);  // each snapshot well under a second
}

}  // namespace
}  // namespace cloudiq
