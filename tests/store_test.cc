#include <gtest/gtest.h>

#include "store/freelist.h"
#include "store/object_store_io.h"
#include "store/page_codec.h"
#include "store/physical_loc.h"
#include "store/storage.h"
#include "store/system_store.h"
#include "tests/test_util.h"

namespace cloudiq {
namespace {

using testing_util::SingleNodeHarness;

TEST(PhysicalLocTest, CloudVsBlockEncoding) {
  PhysicalLoc invalid;
  EXPECT_FALSE(invalid.valid());

  uint64_t key = kCloudKeyBase + 42;
  PhysicalLoc cloud = PhysicalLoc::ForCloudKey(key);
  EXPECT_TRUE(cloud.valid());
  EXPECT_TRUE(cloud.is_cloud());
  EXPECT_EQ(cloud.cloud_key(), key);

  PhysicalLoc blocks = PhysicalLoc::ForBlocks(123456, 16);
  EXPECT_TRUE(blocks.valid());
  EXPECT_FALSE(blocks.is_cloud());
  EXPECT_EQ(blocks.first_block(), 123456u);
  EXPECT_EQ(blocks.block_count(), 16u);

  // Round trip through the single 64-bit field the blockmap stores.
  PhysicalLoc back = PhysicalLoc::FromEncoded(blocks.encoded());
  EXPECT_EQ(back.first_block(), 123456u);
  EXPECT_EQ(back.block_count(), 16u);
}

TEST(PhysicalLocTest, MaxBlockNumberDoesNotCollideWithCloudRange) {
  PhysicalLoc loc = PhysicalLoc::ForBlocks(kMaxBlockNumber, 16);
  EXPECT_FALSE(loc.is_cloud());
  EXPECT_EQ(loc.first_block(), kMaxBlockNumber);
}

TEST(PageCodecTest, RoundTripCompressible) {
  std::vector<uint8_t> payload(10000, 0);
  for (int i = 0; i < 100; ++i) payload[i * 97] = static_cast<uint8_t>(i);
  std::vector<uint8_t> frame = EncodePage(payload);
  EXPECT_LT(frame.size(), payload.size() / 2);  // zeros compress
  Result<std::vector<uint8_t>> back = DecodePage(frame);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), payload);
}

TEST(PageCodecTest, RoundTripIncompressible) {
  std::vector<uint8_t> payload;
  Rng rng(3);
  for (int i = 0; i < 5000; ++i) {
    payload.push_back(static_cast<uint8_t>(rng.Next()));
  }
  std::vector<uint8_t> frame = EncodePage(payload);
  Result<std::vector<uint8_t>> back = DecodePage(frame);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), payload);
}

TEST(PageCodecTest, EmptyPayload) {
  std::vector<uint8_t> frame = EncodePage({});
  Result<std::vector<uint8_t>> back = DecodePage(frame);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back.value().empty());
}

TEST(PageCodecTest, DetectsCorruption) {
  std::vector<uint8_t> payload(1000, 7);
  std::vector<uint8_t> frame = EncodePage(payload);
  frame[frame.size() - 1] ^= 0xff;
  EXPECT_FALSE(DecodePage(frame).ok());
  EXPECT_FALSE(DecodePage({1, 2, 3}).ok());
  std::vector<uint8_t> bad_magic = EncodePage(payload);
  bad_magic[0] ^= 0xff;
  EXPECT_TRUE(DecodePage(bad_magic).status().IsCorruption());
}

TEST(RleTest, RunsAndLiterals) {
  std::vector<uint8_t> in = {1, 1, 1, 1, 1, 2, 3, 4, 5, 5, 5, 5, 9};
  std::vector<uint8_t> compressed = RleCompress(in);
  Result<std::vector<uint8_t>> back = RleDecompress(compressed, in.size());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), in);
}

TEST(FreelistTest, AllocateAndFree) {
  Freelist fl;
  uint64_t a = fl.AllocateRun(4);
  uint64_t b = fl.AllocateRun(4);
  EXPECT_NE(a, b);
  EXPECT_EQ(fl.UsedBlocks(), 8u);
  for (uint64_t i = 0; i < 4; ++i) EXPECT_TRUE(fl.IsUsed(a + i));
  fl.FreeRun(a, 4);
  EXPECT_EQ(fl.UsedBlocks(), 4u);
  // Freed space is reusable.
  uint64_t c = fl.AllocateRun(4);
  EXPECT_EQ(c, a);
}

TEST(FreelistTest, SerializationRoundTrip) {
  Freelist fl;
  fl.AllocateRun(10);
  fl.MarkUsed(100, 5);
  Freelist back = Freelist::Deserialize(fl.Serialize());
  EXPECT_EQ(back.UsedBlocks(), 15u);
  EXPECT_TRUE(back.IsUsed(104));
}

TEST(ObjectStoreIoTest, RetriesNotFoundUntilVisible) {
  ObjectStoreOptions store_opts;
  store_opts.lag_probability = 1.0;
  store_opts.mean_visibility_lag = 0.1;
  SingleNodeHarness h(4096, store_opts);

  ObjectStoreIo& io = h.storage->object_io();
  uint64_t key = kCloudKeyBase + 5;
  SimTime done = 0;
  ASSERT_TRUE(io.Put(key, h.MakePayload(512, 1), 0.0, &done).ok());
  // A read immediately after the PUT races visibility but retries win.
  SimTime read_done = 0;
  Result<std::vector<uint8_t>> r = io.Get(key, done, &read_done);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(io.stats().not_found_retries, 0u);
  EXPECT_GT(read_done, done);
}

TEST(ObjectStoreIoTest, MissingKeyEventuallyNotFound) {
  SingleNodeHarness h;
  ObjectStoreIo& io = h.storage->object_io();
  SimTime done = 0;
  Result<std::vector<uint8_t>> r = io.Get(kCloudKeyBase + 999, 0.0, &done);
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(ObjectStoreIoTest, PlainPrefixAblation) {
  ObjectStoreIo::Options opts;
  opts.hashed_prefixes = false;
  SingleNodeHarness h;
  ObjectStoreIo io(&h.env.object_store(), &h.node->nic(), opts);
  EXPECT_EQ(io.StoreKey(kCloudKeyBase).substr(0, 5), "data/");
  // Hashed version has a randomized prefix instead.
  EXPECT_NE(h.storage->object_io().StoreKey(kCloudKeyBase).substr(0, 5),
            "data/");
}

TEST(StorageSubsystemTest, CloudWriteReadRoundTrip) {
  SingleNodeHarness h;
  std::vector<uint8_t> payload = h.MakePayload(2000, 9);
  Result<PhysicalLoc> loc = h.storage->WritePage(
      h.cloud_space, payload, CloudCache::WriteMode::kWriteThrough, 1);
  ASSERT_TRUE(loc.ok()) << loc.status().ToString();
  EXPECT_TRUE(loc->is_cloud());
  Result<std::vector<uint8_t>> back =
      h.storage->ReadPage(h.cloud_space, *loc);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value(), payload);
  EXPECT_GT(h.node->clock().now(), 0.0);  // I/O consumed simulated time
}

TEST(StorageSubsystemTest, BlockWriteReadRoundTrip) {
  SingleNodeHarness h;
  std::vector<uint8_t> payload = h.MakePayload(3000, 4);
  Result<PhysicalLoc> loc = h.storage->WritePage(
      h.block_space, payload, CloudCache::WriteMode::kWriteThrough, 1);
  ASSERT_TRUE(loc.ok());
  EXPECT_FALSE(loc->is_cloud());
  EXPECT_GT(h.block_space->freelist.UsedBlocks(), 0u);
  Result<std::vector<uint8_t>> back =
      h.storage->ReadPage(h.block_space, *loc);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), payload);
}

TEST(StorageSubsystemTest, EveryCloudWriteGetsAFreshKey) {
  SingleNodeHarness h;
  std::vector<uint8_t> payload = h.MakePayload(500, 2);
  std::set<uint64_t> keys;
  for (int i = 0; i < 50; ++i) {
    Result<PhysicalLoc> loc = h.storage->WritePage(
        h.cloud_space, payload, CloudCache::WriteMode::kWriteBack, 1);
    ASSERT_TRUE(loc.ok());
    EXPECT_TRUE(keys.insert(loc->cloud_key()).second);
  }
  // The store-level overwrite counter confirms never-write-twice held.
  EXPECT_EQ(h.env.object_store().stats().overwrites, 0u);
}

TEST(StorageSubsystemTest, KeygenPathNeverTripsTheTripwire) {
  // Regression: the ObjectKeyGenerator write path must run clean with the
  // tripwire armed — every write, rewrite and delete-then-write cycle
  // lands on a fresh monotone key, so no PUT ever repeats.
  ObjectStoreOptions store_opts;
  store_opts.enforce_never_write_twice = true;
  SingleNodeHarness h(4096, store_opts);

  std::vector<PhysicalLoc> locs;
  for (int i = 0; i < 64; ++i) {
    Result<PhysicalLoc> loc = h.storage->WritePage(
        h.cloud_space, h.MakePayload(300 + i, static_cast<uint8_t>(i)),
        i % 2 == 0 ? CloudCache::WriteMode::kWriteThrough
                   : CloudCache::WriteMode::kWriteBack,
        1);
    ASSERT_TRUE(loc.ok()) << loc.status().ToString();
    locs.push_back(*loc);
  }
  ASSERT_TRUE(h.storage->FlushForCommit(1).ok());
  // Delete half the pages, then keep writing: freed keys are never reused.
  for (size_t i = 0; i < locs.size(); i += 2) {
    ASSERT_TRUE(h.storage->DeletePage(h.cloud_space, locs[i],
                                      /*defer_allowed=*/false)
                    .ok());
  }
  for (int i = 0; i < 32; ++i) {
    Result<PhysicalLoc> loc = h.storage->WritePage(
        h.cloud_space, h.MakePayload(200, static_cast<uint8_t>(i)),
        CloudCache::WriteMode::kWriteThrough, 2);
    ASSERT_TRUE(loc.ok()) << loc.status().ToString();
  }
  EXPECT_EQ(h.env.object_store().stats().overwrites, 0u);
}

TEST(StorageSubsystemTest, OverwriteForbiddenUnderPolicy) {
  SingleNodeHarness h;
  std::vector<uint8_t> payload = h.MakePayload(100, 1);
  Result<PhysicalLoc> loc = h.storage->WritePage(
      h.cloud_space, payload, CloudCache::WriteMode::kWriteThrough, 1);
  ASSERT_TRUE(loc.ok());
  Status st = h.storage->OverwriteCloudPage(h.cloud_space, *loc, payload);
  EXPECT_TRUE(st.IsFailedPrecondition());
}

TEST(StorageSubsystemTest, OverwriteAblationCausesStaleReads) {
  // With never-write-twice disabled, rewriting a key under eventual
  // consistency serves stale data — the anomaly §3 exists to prevent.
  ObjectStoreOptions store_opts;
  store_opts.lag_probability = 1.0;
  store_opts.mean_visibility_lag = 10.0;
  StorageSubsystem::Options storage_opts;
  storage_opts.never_write_twice = false;
  SingleNodeHarness h(4096, store_opts, storage_opts);

  std::vector<uint8_t> v1 = h.MakePayload(100, 1);
  std::vector<uint8_t> v2 = h.MakePayload(100, 99);
  Result<PhysicalLoc> loc = h.storage->WritePage(
      h.cloud_space, v1, CloudCache::WriteMode::kWriteThrough, 1);
  ASSERT_TRUE(loc.ok());
  // Wait out the first version's visibility lag.
  h.node->clock().Advance(1000);
  ASSERT_TRUE(
      h.storage->OverwriteCloudPage(h.cloud_space, *loc, v2).ok());
  Result<std::vector<uint8_t>> read =
      h.storage->ReadPage(h.cloud_space, *loc);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), v1);  // stale!
  EXPECT_GT(h.env.object_store().stats().stale_reads, 0u);
}

TEST(StorageSubsystemTest, EncryptionHidesPlaintextAtRest) {
  StorageSubsystem::Options opts;
  opts.encrypt_pages = true;
  SingleNodeHarness h(4096, ObjectStoreOptions(), opts);

  std::vector<uint8_t> payload(600, 0x55);  // recognizable plaintext
  Result<PhysicalLoc> loc = h.storage->WritePage(
      h.cloud_space, payload, CloudCache::WriteMode::kWriteThrough, 1);
  ASSERT_TRUE(loc.ok());

  // Raw object bytes must not contain long runs of the plaintext byte.
  SimTime done = 0;
  Result<std::vector<uint8_t>> raw = h.env.object_store().Get(
      h.storage->object_io().StoreKey(loc->cloud_key()),
      h.node->clock().now() + 100, &done);
  ASSERT_TRUE(raw.ok());
  int run = 0, max_run = 0;
  for (uint8_t b : raw.value()) {
    run = b == 0x55 ? run + 1 : 0;
    max_run = std::max(max_run, run);
  }
  EXPECT_LT(max_run, 16);

  // But the storage subsystem decrypts transparently.
  Result<std::vector<uint8_t>> back =
      h.storage->ReadPage(h.cloud_space, *loc);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), payload);
}

TEST(StorageSubsystemTest, DeleteCloudPageRemovesObject) {
  SingleNodeHarness h;
  Result<PhysicalLoc> loc = h.storage->WritePage(
      h.cloud_space, h.MakePayload(100, 3),
      CloudCache::WriteMode::kWriteThrough, 1);
  ASSERT_TRUE(loc.ok());
  EXPECT_EQ(h.env.object_store().LiveObjectCount(), 1u);
  ASSERT_TRUE(h.storage->DeletePage(h.cloud_space, *loc).ok());
  EXPECT_EQ(h.env.object_store().LiveObjectCount(), 0u);
}

TEST(StorageSubsystemTest, DeleteInterceptorDefersDeletion) {
  SingleNodeHarness h;
  std::vector<uint64_t> intercepted;
  h.storage->set_delete_interceptor([&](uint64_t key) {
    intercepted.push_back(key);
    return true;
  });
  Result<PhysicalLoc> loc = h.storage->WritePage(
      h.cloud_space, h.MakePayload(100, 3),
      CloudCache::WriteMode::kWriteThrough, 1);
  ASSERT_TRUE(loc.ok());
  ASSERT_TRUE(h.storage->DeletePage(h.cloud_space, *loc).ok());
  EXPECT_EQ(intercepted.size(), 1u);
  EXPECT_EQ(h.env.object_store().LiveObjectCount(), 1u);  // retained

  // Rollback-style deletes bypass the interceptor.
  Result<PhysicalLoc> loc2 = h.storage->WritePage(
      h.cloud_space, h.MakePayload(100, 4),
      CloudCache::WriteMode::kWriteThrough, 1);
  ASSERT_TRUE(loc2.ok());
  ASSERT_TRUE(h.storage
                  ->DeletePage(h.cloud_space, *loc2, /*defer_allowed=*/false)
                  .ok());
  EXPECT_EQ(intercepted.size(), 1u);
  EXPECT_EQ(h.env.object_store().LiveObjectCount(), 1u);
}

TEST(StorageSubsystemTest, PayloadTooLargeRejected) {
  SingleNodeHarness h(/*page_size=*/1024);
  Status st = h.storage
                  ->WritePage(h.cloud_space, h.MakePayload(2000, 1),
                              CloudCache::WriteMode::kWriteThrough, 1)
                  .status();
  EXPECT_TRUE(st.IsInvalidArgument());
}

TEST(StorageSubsystemTest, ParallelWritesFasterThanSerial) {
  SingleNodeHarness serial_h, parallel_h;
  std::vector<uint8_t> payload = serial_h.MakePayload(4000, 5);

  // Serial: one at a time.
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(serial_h.storage
                    ->WritePage(serial_h.cloud_space, payload,
                                CloudCache::WriteMode::kWriteThrough, 1)
                    .ok());
  }
  // Parallel: batched ops.
  std::vector<IoScheduler::Op> ops;
  for (int i = 0; i < 64; ++i) {
    Result<StorageSubsystem::PreparedWrite> prepared =
        parallel_h.storage->PrepareWrite(
            parallel_h.cloud_space, payload,
            CloudCache::WriteMode::kWriteThrough, 1);
    ASSERT_TRUE(prepared.ok());
    ops.push_back(prepared->op);
  }
  parallel_h.node->io().RunParallel(ops, parallel_h.node->IoWidth());

  EXPECT_LT(parallel_h.node->clock().now(),
            serial_h.node->clock().now() / 4);
}

TEST(SystemStoreTest, PutGetOverwrite) {
  SingleNodeHarness h;
  SimTime done = 0;
  ASSERT_TRUE(h.system.Put("a", {1, 2, 3}, 0.0, &done).ok());
  ASSERT_TRUE(h.system.Put("a", {4, 5}, done, &done).ok());  // in place
  Result<std::vector<uint8_t>> r = h.system.Get("a", done, &done);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), (std::vector<uint8_t>{4, 5}));
}

TEST(SystemStoreTest, SurvivesReopen) {
  SingleNodeHarness h;
  SimTime done = 0;
  ASSERT_TRUE(h.system.Put("catalog", {9, 9, 9}, 0.0, &done).ok());
  ASSERT_TRUE(h.system.Put("chain", {1}, done, &done).ok());

  // Simulated restart: a fresh SystemStore over the same volume.
  SystemStore reopened(h.system_volume);
  ASSERT_TRUE(reopened.Open(done, &done).ok());
  Result<std::vector<uint8_t>> r = reopened.Get("catalog", done, &done);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), (std::vector<uint8_t>{9, 9, 9}));
  EXPECT_EQ(reopened.List(),
            (std::vector<std::string>{"catalog", "chain"}));
}

TEST(SystemStoreTest, DeleteRemovesDurably) {
  SingleNodeHarness h;
  SimTime done = 0;
  ASSERT_TRUE(h.system.Put("x", {1}, 0.0, &done).ok());
  ASSERT_TRUE(h.system.Delete("x", done, &done).ok());
  SystemStore reopened(h.system_volume);
  ASSERT_TRUE(reopened.Open(done, &done).ok());
  EXPECT_FALSE(reopened.Contains("x"));
}

}  // namespace
}  // namespace cloudiq
