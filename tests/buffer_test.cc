#include <gtest/gtest.h>

#include "buffer/buffer_manager.h"
#include "buffer/prefetcher.h"
#include "tests/test_util.h"

namespace cloudiq {
namespace {

using testing_util::SingleNodeHarness;

BufferManager::FlushBatchFn NoopFlush() {
  return [](uint64_t, std::vector<BufferManager::DirtyPage>&&, bool) {
    return Status::Ok();
  };
}

TEST(BufferManagerTest, GetCachesAndHits) {
  BufferManager buffer({.capacity_bytes = 1 << 20}, NoopFlush());
  int loads = 0;
  auto loader = [&]() -> Result<std::vector<uint8_t>> {
    ++loads;
    return std::vector<uint8_t>{1, 2, 3};
  };
  PhysicalLoc loc = PhysicalLoc::ForCloudKey(kCloudKeyBase + 1);
  ASSERT_TRUE(buffer.Get(1, loc, loader).ok());
  ASSERT_TRUE(buffer.Get(1, loc, loader).ok());
  EXPECT_EQ(loads, 1);
  EXPECT_EQ(buffer.stats().hits, 1u);
  EXPECT_EQ(buffer.stats().misses, 1u);
}

TEST(BufferManagerTest, LoaderErrorPropagates) {
  BufferManager buffer({.capacity_bytes = 1 << 20}, NoopFlush());
  auto loader = [&]() -> Result<std::vector<uint8_t>> {
    return Status::IoError("boom");
  };
  Result<BufferManager::PageData> r =
      buffer.Get(1, PhysicalLoc::ForCloudKey(kCloudKeyBase + 1), loader);
  EXPECT_TRUE(r.status().IsIoError());
}

TEST(BufferManagerTest, LruEvictsColdestClean) {
  BufferManager buffer({.capacity_bytes = 350}, NoopFlush());
  auto page = [](uint8_t v) { return std::vector<uint8_t>(100, v); };
  buffer.Insert(1, PhysicalLoc::ForCloudKey(kCloudKeyBase + 1), page(1));
  buffer.Insert(1, PhysicalLoc::ForCloudKey(kCloudKeyBase + 2), page(2));
  buffer.Insert(1, PhysicalLoc::ForCloudKey(kCloudKeyBase + 3), page(3));
  // Touch key 1 so key 2 becomes the coldest.
  auto loader = []() -> Result<std::vector<uint8_t>> {
    return Status::IoError("must not load");
  };
  ASSERT_TRUE(
      buffer.Get(1, PhysicalLoc::ForCloudKey(kCloudKeyBase + 1), loader)
          .ok());
  buffer.Insert(1, PhysicalLoc::ForCloudKey(kCloudKeyBase + 4), page(4));
  EXPECT_TRUE(buffer.Cached(1, PhysicalLoc::ForCloudKey(kCloudKeyBase + 1)));
  EXPECT_FALSE(
      buffer.Cached(1, PhysicalLoc::ForCloudKey(kCloudKeyBase + 2)));
  EXPECT_GT(buffer.stats().clean_evictions, 0u);
}

TEST(BufferManagerTest, InvalidateDropsEntry) {
  BufferManager buffer({.capacity_bytes = 1 << 20}, NoopFlush());
  PhysicalLoc loc = PhysicalLoc::ForBlocks(10, 2);
  buffer.Insert(2, loc, {1, 2, 3});
  EXPECT_TRUE(buffer.Cached(2, loc));
  buffer.Invalidate(2, loc);
  EXPECT_FALSE(buffer.Cached(2, loc));
  EXPECT_EQ(buffer.clean_bytes(), 0u);
}

TEST(BufferManagerTest, DirtyReadYourWrites) {
  BufferManager buffer({.capacity_bytes = 1 << 20}, NoopFlush());
  ASSERT_TRUE(buffer.PutDirty(7, 1, 0, {9, 9}).ok());
  Result<BufferManager::PageData> r = buffer.GetDirty(7, 1, 0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(**r, (std::vector<uint8_t>{9, 9}));
  EXPECT_FALSE(buffer.GetDirty(7, 1, 1).ok());
  EXPECT_FALSE(buffer.GetDirty(8, 1, 0).ok());
}

TEST(BufferManagerTest, PutDirtyReplacesInPlace) {
  BufferManager buffer({.capacity_bytes = 1 << 20}, NoopFlush());
  ASSERT_TRUE(buffer.PutDirty(7, 1, 0, std::vector<uint8_t>(100, 1)).ok());
  ASSERT_TRUE(buffer.PutDirty(7, 1, 0, std::vector<uint8_t>(50, 2)).ok());
  EXPECT_EQ(buffer.dirty_bytes(), 50u);
  EXPECT_EQ((**buffer.GetDirty(7, 1, 0))[0], 2);
}

TEST(BufferManagerTest, ChurnEvictionFlushesOldestDirty) {
  std::vector<uint64_t> flushed_pages;
  bool saw_commit = false;
  BufferManager buffer(
      {.capacity_bytes = 500},
      [&](uint64_t txn, std::vector<BufferManager::DirtyPage>&& pages,
          bool for_commit) {
        EXPECT_EQ(txn, 7u);
        if (for_commit) saw_commit = true;
        for (auto& p : pages) flushed_pages.push_back(p.page);
        return Status::Ok();
      });
  for (uint64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        buffer.PutDirty(7, 1, i, std::vector<uint8_t>(100, 1)).ok());
  }
  // Capacity 500 with 10 x 100-byte pages: churn flushes happened, oldest
  // pages first.
  EXPECT_FALSE(flushed_pages.empty());
  EXPECT_EQ(flushed_pages.front(), 0u);
  EXPECT_FALSE(saw_commit);
  EXPECT_GT(buffer.stats().churn_flushes, 0u);
  EXPECT_LE(buffer.dirty_bytes(), 500u);
}

TEST(BufferManagerTest, FlushTxnDrainsEverythingForCommit) {
  std::vector<std::pair<uint64_t, bool>> calls;
  BufferManager buffer(
      {.capacity_bytes = 1 << 20},
      [&](uint64_t, std::vector<BufferManager::DirtyPage>&& pages,
          bool for_commit) {
        calls.emplace_back(pages.size(), for_commit);
        return Status::Ok();
      });
  for (uint64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(buffer.PutDirty(3, 1, i, {1, 2, 3}).ok());
  }
  ASSERT_TRUE(buffer.FlushTxn(3).ok());
  ASSERT_EQ(calls.size(), 1u);
  EXPECT_EQ(calls[0].first, 5u);
  EXPECT_TRUE(calls[0].second);
  EXPECT_EQ(buffer.dirty_bytes(), 0u);
  // Second flush is a no-op.
  ASSERT_TRUE(buffer.FlushTxn(3).ok());
  EXPECT_EQ(calls.size(), 1u);
}

TEST(BufferManagerTest, DropTxnDiscardsWithoutFlushing) {
  int flushes = 0;
  BufferManager buffer(
      {.capacity_bytes = 1 << 20},
      [&](uint64_t, std::vector<BufferManager::DirtyPage>&&, bool) {
        ++flushes;
        return Status::Ok();
      });
  ASSERT_TRUE(buffer.PutDirty(3, 1, 0, {1}).ok());
  buffer.DropTxn(3);
  EXPECT_EQ(buffer.dirty_bytes(), 0u);
  ASSERT_TRUE(buffer.FlushTxn(3).ok());
  EXPECT_EQ(flushes, 0);
}

TEST(PrefetcherTest, BatchFetchPopulatesCache) {
  SingleNodeHarness h;
  BufferManager buffer({.capacity_bytes = 64 << 20}, NoopFlush());
  Prefetcher prefetcher(h.storage.get(), &buffer);

  std::vector<PhysicalLoc> locs;
  for (int i = 0; i < 32; ++i) {
    Result<PhysicalLoc> loc = h.storage->WritePage(
        h.cloud_space, h.MakePayload(1024, static_cast<uint8_t>(i)),
        CloudCache::WriteMode::kWriteThrough, 1);
    ASSERT_TRUE(loc.ok());
    locs.push_back(*loc);
  }
  SimTime before = h.node->clock().now();
  ASSERT_TRUE(prefetcher.PrefetchLocs(h.cloud_space, locs).ok());
  SimTime elapsed = h.node->clock().now() - before;
  EXPECT_EQ(prefetcher.stats().fetched, 32u);
  for (PhysicalLoc loc : locs) {
    EXPECT_TRUE(buffer.Cached(h.cloud_space->id, loc));
  }
  // Prefetch of 32 pages ran in parallel: far faster than 32 serial
  // object-store round trips (~12 ms each).
  EXPECT_LT(elapsed, 32 * 0.012 / 2);

  // A second prefetch is free.
  ASSERT_TRUE(prefetcher.PrefetchLocs(h.cloud_space, locs).ok());
  EXPECT_EQ(prefetcher.stats().already_cached, 32u);
}

}  // namespace
}  // namespace cloudiq
