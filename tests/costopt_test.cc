#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "columnar/table_loader.h"
#include "costopt/chooser.h"
#include "costopt/cost_model.h"
#include "costopt/predictor.h"
#include "costopt/whatif.h"
#include "engine/database.h"
#include "exec/executor.h"
#include "exec/explain.h"
#include "tpch/queries.h"
#include "tpch/tpch_gen.h"
#include "tpch/tpch_loader.h"
#include "workload/workload_engine.h"

namespace cloudiq {
namespace {

using costopt::ChoosePlan;
using costopt::CostModel;
using costopt::NodeResources;
using costopt::PlanChoice;
using costopt::PlanEstimate;
using costopt::PlanPolicy;
using costopt::PredictionAccuracy;
using costopt::ScanWork;
using costopt::SpendPredictor;
using costopt::WhatIfLog;
using costopt::WhatIfScan;

// --- cost model: the same pricing tables the ledger bills with ----------

TEST(CostModelTest, PullChargesColdGetsOnly) {
  LedgerPrices prices;
  CostModel model(prices);
  NodeResources node;
  ScanWork work;
  work.pull_pages = 100;
  work.pull_pages_buffer = 40;
  work.pull_pages_ocm = 10;
  work.pull_bytes = 1000000;

  PlanEstimate est = model.PricePull(work, node);
  EXPECT_EQ(est.name, "pull");
  EXPECT_EQ(est.cold_pages, 50u);
  // GETs have no per-byte charge: 50 cold pages is 50 requests, the 50
  // warm pages are free — the exact asymmetry the legacy planner missed.
  EXPECT_DOUBLE_EQ(est.usd, 50.0 / 1000.0 * prices.get_per_1k);
  EXPECT_GT(est.network_seconds, 0);
  EXPECT_GT(est.ocm_fetch_seconds, 0);
  EXPECT_GT(est.cpu_seconds, 0);
  EXPECT_DOUBLE_EQ(est.latency_seconds, est.network_seconds +
                                            est.ocm_fetch_seconds +
                                            est.cpu_seconds);
  EXPECT_NE(est.detail.find("50/100 pages warm"), std::string::npos);

  // Fully warm: zero request dollars, zero network stall, CPU remains.
  work.pull_pages_buffer = 100;
  work.pull_pages_ocm = 0;
  PlanEstimate warm = model.PricePull(work, node);
  EXPECT_EQ(warm.cold_pages, 0u);
  EXPECT_DOUBLE_EQ(warm.usd, 0);
  EXPECT_DOUBLE_EQ(warm.network_seconds, 0);
  EXPECT_GT(warm.cpu_seconds, 0);
}

TEST(CostModelTest, PushPricesRequestsScannedAndReturned) {
  LedgerPrices prices;
  CostModel model(prices);
  NodeResources node;
  ScanWork work;
  work.push_requests = 4;
  work.push_request_bytes = 2048;
  work.push_scan_bytes = 2000000000ull;   // 2 GB server-side scan
  work.push_return_bytes = 10000000ull;   // 10 MB result

  PlanEstimate est = model.PricePush(work, node);
  EXPECT_EQ(est.name, "push");
  EXPECT_DOUBLE_EQ(est.usd, 4.0 / 1000.0 * prices.select_per_1k +
                                2.0 * prices.select_scanned_per_gb +
                                0.01 * prices.select_returned_per_gb);
  // 4 sequential SELECT round-trips plus the scan through the store-side
  // bandwidth: the ndp_select stall class.
  EXPECT_NEAR(est.ndp_select_seconds,
              4 * node.select_base_latency +
                  2000000000.0 / node.select_scan_bandwidth,
              1e-9);
  EXPECT_GT(est.network_seconds, 0);
  EXPECT_DOUBLE_EQ(est.latency_seconds, est.ndp_select_seconds +
                                            est.network_seconds +
                                            est.cpu_seconds);
  EXPECT_NE(est.detail.find("4 partition selects"), std::string::npos);
}

TEST(CostModelTest, PlacementAddsComputeTimeAtNodeRate) {
  CostModel model(LedgerPrices{});
  NodeResources node;
  node.hourly_usd = 2.0;
  ScanWork work;
  work.pull_pages = 10;
  work.pull_bytes = 100000;
  PlanEstimate est = model.PricePlacement(work, node, /*push=*/false,
                                          "pull@reader-1");
  EXPECT_EQ(est.name, "pull@reader-1");
  EXPECT_DOUBLE_EQ(est.ec2_usd, est.latency_seconds / 3600.0 * 2.0);
  EXPECT_DOUBLE_EQ(est.TotalUsd(), est.usd + est.ec2_usd);
}

// --- chooser: budget-aware plan choice ----------------------------------

std::vector<PlanEstimate> TwoCandidates() {
  PlanEstimate fast;  // expensive but quick (a cold pull, say)
  fast.name = "pull";
  fast.usd = 0.01;
  fast.latency_seconds = 1.0;
  PlanEstimate cheap;  // cheap but slow
  cheap.name = "push";
  cheap.usd = 0.001;
  cheap.latency_seconds = 10.0;
  return {fast, cheap};
}

TEST(ChooserTest, MinCostUnderSloFiltersThenTakesCheapest) {
  std::vector<PlanEstimate> c = TwoCandidates();
  // Only the fast candidate meets a 5s SLO.
  PlanChoice tight = ChoosePlan(c, PlanPolicy::kMinCostUnderSlo, 5.0, -1);
  EXPECT_EQ(tight.index, 0);
  // Both meet 20s: the cheap one wins.
  PlanChoice loose = ChoosePlan(c, PlanPolicy::kMinCostUnderSlo, 20.0, -1);
  EXPECT_EQ(loose.index, 1);
  // No SLO: everything qualifies, cheapest wins.
  PlanChoice none = ChoosePlan(c, PlanPolicy::kMinCostUnderSlo, 0, -1);
  EXPECT_EQ(none.index, 1);
  // Nothing meets 0.5s: fall back to the fastest, and say so.
  PlanChoice miss = ChoosePlan(c, PlanPolicy::kMinCostUnderSlo, 0.5, -1);
  EXPECT_EQ(miss.index, 0);
  EXPECT_NE(miss.reason.find("no candidate meets slo"), std::string::npos);
  // Every verdict cites the deciding estimate (USD + latency).
  EXPECT_NE(loose.reason.find("$"), std::string::npos);
  EXPECT_NE(loose.reason.find("predicted"), std::string::npos);
}

TEST(ChooserTest, MinLatencyUnderBudgetFiltersThenTakesFastest) {
  std::vector<PlanEstimate> c = TwoCandidates();
  // Only the cheap candidate fits $0.005.
  PlanChoice tight =
      ChoosePlan(c, PlanPolicy::kMinLatencyUnderBudget, 0, 0.005);
  EXPECT_EQ(tight.index, 1);
  // Both fit $0.02: the fast one wins.
  PlanChoice loose =
      ChoosePlan(c, PlanPolicy::kMinLatencyUnderBudget, 0, 0.02);
  EXPECT_EQ(loose.index, 0);
  // Unlimited budget: fastest.
  PlanChoice unlimited =
      ChoosePlan(c, PlanPolicy::kMinLatencyUnderBudget, 0, -1);
  EXPECT_EQ(unlimited.index, 0);
  // Nothing fits $0.0001: cheapest, flagged as a budget miss.
  PlanChoice broke =
      ChoosePlan(c, PlanPolicy::kMinLatencyUnderBudget, 0, 0.0001);
  EXPECT_EQ(broke.index, 1);
  EXPECT_NE(broke.reason.find("no candidate fits budget"),
            std::string::npos);
}

TEST(ChooserTest, CostBlindDelegatesToCallerHeuristic) {
  PlanChoice blind =
      ChoosePlan(TwoCandidates(), PlanPolicy::kCostBlind, 0, -1);
  EXPECT_EQ(blind.index, 0);
  EXPECT_NE(blind.reason.find("cost_blind"), std::string::npos);
}

// --- spend predictor ----------------------------------------------------

TEST(SpendPredictorTest, MeansWithTenantAndPriorFallback) {
  SpendPredictor predictor(0.5);
  EXPECT_DOUBLE_EQ(predictor.Predict("t", "a"), 0.5);  // unseen: prior
  predictor.Observe("t", "a", 1.0);
  predictor.Observe("t", "a", 2.0);
  EXPECT_DOUBLE_EQ(predictor.Predict("t", "a"), 1.5);  // per-tag mean
  EXPECT_EQ(predictor.observations("t", "a"), 2u);
  // Fresh tag of a known tenant: tenant-wide mean, not the prior.
  EXPECT_DOUBLE_EQ(predictor.Predict("t", "b"), 1.5);
  // Unknown tenant: prior.
  EXPECT_DOUBLE_EQ(predictor.Predict("u", "x"), 0.5);
}

// --- what-if log: predicted vs. billed ----------------------------------

TEST(WhatIfTest, ComparePredictionsMatchesLedgerKeys) {
  LedgerPrices prices;
  WhatIfLog log;
  WhatIfScan scan;
  scan.op = "scan t";
  scan.op_id = 3;
  PlanEstimate pull;
  pull.name = "pull";
  pull.usd = 0.0005;
  scan.candidates = {pull};
  scan.chosen = 0;
  log.Add(scan);

  // The ledger billed 1000 GETs to (query 7, operator 3).
  std::map<CostLedger::Key, CostLedger::Entry> entries;
  CostLedger::Key key;
  key.query_id = 7;
  key.operator_id = 3;
  CostLedger::Entry entry;
  entry.gets = 1000;
  entries[key] = entry;

  PredictionAccuracy acc =
      costopt::ComparePredictions(log, entries, 7, prices);
  EXPECT_EQ(acc.scans, 1u);
  EXPECT_DOUBLE_EQ(acc.predicted_usd, 0.0005);
  EXPECT_DOUBLE_EQ(acc.billed_usd, prices.get_per_1k);
  EXPECT_NEAR(acc.abs_error_usd, 0.0005 - prices.get_per_1k, 1e-12);
  EXPECT_NEAR(acc.RelativeError(),
              (0.0005 - prices.get_per_1k) / prices.get_per_1k, 1e-9);

  // A different query's entries never match.
  PredictionAccuracy other =
      costopt::ComparePredictions(log, entries, 8, prices);
  EXPECT_EQ(other.scans, 1u);
  EXPECT_DOUBLE_EQ(other.billed_usd, 0);
}

TEST(WhatIfTest, FormatListsCandidatesAndWinner) {
  WhatIfLog log;
  WhatIfScan scan;
  scan.op = "scan lineitem";
  scan.op_id = 2;
  scan.policy = "min_cost_under_slo";
  std::vector<PlanEstimate> c = TwoCandidates();
  scan.candidates = c;
  scan.chosen = 1;
  scan.reason = "min_cost_under_slo: push $0.001, 10s predicted";
  log.Add(scan);
  std::string text = costopt::FormatWhatIf(log, "Q6");
  EXPECT_NE(text.find("EXPLAIN WHATIF Q6"), std::string::npos);
  EXPECT_NE(text.find("scan lineitem [op 2]"), std::string::npos);
  EXPECT_NE(text.find("pull"), std::string::npos);
  EXPECT_NE(text.find("push       *"), std::string::npos);  // winner mark
  EXPECT_NE(text.find("reason: min_cost_under_slo"), std::string::npos);
  EXPECT_NE(text.find("predicted request usd: 0.001"), std::string::npos);

  WhatIfLog empty;
  EXPECT_NE(costopt::FormatWhatIf(empty, "Q1").find("planner not"),
            std::string::npos);
}

// --- executor integration: residency-aware planning ---------------------

Database::Options CostOptDbOptions() {
  Database::Options options;
  options.user_storage = UserStorage::kObjectStore;
  options.page_size = 8192;
  options.blockmap_fanout = 16;
  options.enable_ocm = false;
  options.ndp_mode = ndp::NdpMode::kAuto;
  return options;
}

void LoadNarrow(Database* db) {
  TableSchema schema;
  schema.name = "t";
  schema.table_id = 7;
  schema.columns = {{"k", ColumnType::kInt64}, {"v", ColumnType::kDecimal}};
  Transaction* txn = db->Begin();
  TableLoader loader = db->NewTableLoader(txn, schema);
  Batch batch;
  batch.AddColumn("k", {ColumnType::kInt64, {}, {}, {}});
  batch.AddColumn("v", {ColumnType::kDecimal, {}, {}, {}});
  for (int64_t i = 0; i < 20000; ++i) {
    batch.columns[0].ints.push_back(i);
    batch.columns[1].ints.push_back((i * 7) % 99991);
  }
  ASSERT_TRUE(loader.Append(batch.columns).ok());
  ASSERT_TRUE(loader.Finish(db->system()).ok());
  ASSERT_TRUE(db->Commit(txn).ok());
}

// Warms every page of k and v via a rangeless pull scan (never planned
// as pushdown), then runs the selective range scan that the legacy
// cold-pricing planner used to push at a loss.
Result<QueryContext> WarmThenRangeScan(Database* db) {
  {
    Transaction* txn = db->Begin();
    QueryContext ctx = db->NewQueryContext(txn, "warm");
    ScopedQueryAttribution scope(&ctx);
    CLOUDIQ_ASSIGN_OR_RETURN(TableReader reader, ctx.OpenTable(7));
    CLOUDIQ_RETURN_IF_ERROR(ScanTable(&ctx, &reader, {"k", "v"}).status());
    CLOUDIQ_RETURN_IF_ERROR(db->Commit(txn));
  }
  Transaction* txn = db->Begin();
  QueryContext ctx = db->NewQueryContext(txn, "rescan");
  {
    ScopedQueryAttribution scope(&ctx);
    CLOUDIQ_ASSIGN_OR_RETURN(TableReader reader, ctx.OpenTable(7));
    CLOUDIQ_ASSIGN_OR_RETURN(
        Batch out,
        ScanTable(&ctx, &reader, {"v"}, ScanRange{"k", 100, 199}));
    EXPECT_EQ(out.rows(), 100u);
  }
  CLOUDIQ_RETURN_IF_ERROR(db->Commit(txn));
  return ctx;
}

TEST(CostOptExecTest, WarmScanNotPushedRegression) {
  // Repaired planner: the residency probe sees every page in the buffer,
  // prices the pull at $0 cold requests, and keeps the scan local.
  SimEnvironment env;
  Database db(&env, InstanceProfile::M5ad4xlarge(), CostOptDbOptions());
  LoadNarrow(&db);
  Result<QueryContext> ctx = WarmThenRangeScan(&db);
  ASSERT_TRUE(ctx.ok()) << ctx.status().ToString();
  EXPECT_EQ(env.telemetry().stats().counter("ndp.pushdown_scans").value(),
            0u);
  EXPECT_EQ(env.cost_meter().s3_selects(), 0u);
  ASSERT_FALSE(ctx.value().whatif().empty());
  const WhatIfScan& scan = ctx.value().whatif().scans().back();
  EXPECT_EQ(scan.candidates[scan.chosen].name, "pull");
  EXPECT_EQ(scan.candidates[0].cold_pages, 0u);  // probe saw warm pages

  // The regression switch reproduces the old bug: same warm cache, but
  // priced as cold, so the same scan goes server-side at a loss.
  SimEnvironment legacy_env;
  Database::Options legacy = CostOptDbOptions();
  legacy.ndp_assume_cold = true;
  Database legacy_db(&legacy_env, InstanceProfile::M5ad4xlarge(), legacy);
  LoadNarrow(&legacy_db);
  Result<QueryContext> legacy_ctx = WarmThenRangeScan(&legacy_db);
  ASSERT_TRUE(legacy_ctx.ok()) << legacy_ctx.status().ToString();
  EXPECT_GE(
      legacy_env.telemetry().stats().counter("ndp.pushdown_scans").value(),
      1u);
  EXPECT_GT(legacy_env.cost_meter().s3_selects(), 0u);
}

TEST(CostOptExecTest, PolicyChoosesCheapestAndExplainCitesIt) {
  SimEnvironment env;
  Database::Options options = CostOptDbOptions();
  options.cost_policy = PlanPolicy::kMinCostUnderSlo;  // no SLO: cheapest
  Database db(&env, InstanceProfile::M5ad4xlarge(), options);
  LoadNarrow(&db);

  Transaction* txn = db.Begin();
  QueryContext ctx = db.NewQueryContext(txn, "q");
  {
    ScopedQueryAttribution scope(&ctx);
    Result<TableReader> reader = ctx.OpenTable(7);
    ASSERT_TRUE(reader.ok());
    Result<Batch> out = ScanTable(&ctx, &reader.value(), {"v"},
                                  ScanRange{"k", 100, 199});
    ASSERT_TRUE(out.ok()) << out.status().ToString();
  }
  ASSERT_TRUE(db.Commit(txn).ok());

  ASSERT_FALSE(ctx.whatif().empty());
  const WhatIfScan& scan = ctx.whatif().scans().front();
  EXPECT_EQ(scan.policy, std::string("min_cost_under_slo"));
  ASSERT_EQ(scan.candidates.size(), 2u);
  // The chosen candidate really is the cheapest one priced.
  int cheapest = scan.candidates[0].usd <= scan.candidates[1].usd ? 0 : 1;
  EXPECT_EQ(scan.chosen, cheapest);
  EXPECT_FALSE(scan.reason.empty());
  EXPECT_FALSE(scan.placement.empty());  // reader placement is advisory

  // EXPLAIN WHATIF renders the trail and the predicted-vs-billed line.
  std::string text = FormatExplainWhatIf(&ctx);
  EXPECT_NE(text.find("EXPLAIN WHATIF"), std::string::npos);
  EXPECT_NE(text.find("reason:"), std::string::npos);
  EXPECT_NE(text.find("billed request usd:"), std::string::npos);
}

// --- prediction accuracy on the TPC-H power run (satellite 3) ------------

TEST(CostOptTpchTest, PowerRunPredictionErrorWithinBound) {
  SimEnvironment env;
  Database::Options options;
  options.user_storage = UserStorage::kObjectStore;
  options.page_size = 64 * 1024;
  options.enable_ocm = false;
  // Working set far beyond the buffer: scans pull cold pages and bill
  // real GET money, so the error bound is exercised, not vacuous.
  options.buffer_capacity_override = 4 << 20;
  options.ndp_mode = ndp::NdpMode::kAuto;
  options.cost_policy = PlanPolicy::kMinCostUnderSlo;
  Database db(&env, InstanceProfile::M5ad4xlarge(), options);
  TpchGenerator gen(0.005);
  TpchLoadOptions load;
  load.partitions = 4;
  ASSERT_TRUE(LoadTpch(&db, &gen, load).ok());

  CostLedger& ledger = env.telemetry().ledger();
  PredictionAccuracy acc;
  for (int q = 1; q <= 22; ++q) {
    Transaction* txn = db.Begin();
    QueryContext ctx = db.NewQueryContext(txn, "Q" + std::to_string(q));
    {
      ScopedQueryAttribution scope(&ctx);
      Result<Batch> result = RunTpchQuery(&ctx, q);
      ASSERT_TRUE(result.ok()) << "Q" << q << ": "
                               << result.status().ToString();
    }
    ASSERT_TRUE(db.Commit(txn).ok());
    acc.Fold(costopt::ComparePredictions(ctx.whatif(), ledger.entries(),
                                         ctx.attribution().query_id,
                                         ledger.prices()));
  }
  EXPECT_GT(acc.scans, 0u);
  EXPECT_GT(acc.billed_usd, 0.0);
  // Stated bound: across the 22-query power run, the summed per-scan
  // |predicted - billed| request USD stays within 20% of billed spend.
  // Scan-side pricing is exact (SegmentMeta::page_bytes records stored
  // frame sizes); the residual is the SELECT return-bytes term, which
  // is estimated from zone-map selectivity at encoded widths.
  EXPECT_LT(acc.RelativeError(), 0.2)
      << "predicted $" << acc.predicted_usd << " billed $"
      << acc.billed_usd << " abs err $" << acc.abs_error_usd;
}

// --- predictive admission (workload engine) ------------------------------

constexpr uint64_t kEtlTable = 7;

void LoadScrambled(Database* db, int64_t rows) {
  TableSchema schema;
  schema.name = "etl_t";
  schema.table_id = kEtlTable;
  schema.columns = {{"k", ColumnType::kInt64}};
  schema.hg_index_columns = {0};
  Transaction* txn = db->Begin();
  TableLoader loader = db->NewTableLoader(txn, schema);
  Batch batch;
  batch.AddColumn("k", {ColumnType::kInt64, {}, {}, {}});
  for (int64_t i = 0; i < rows; ++i) {
    // Scrambled so the column won't encode down into the tiny buffer.
    batch.columns[0].ints.push_back((i * 1103515245 + 12345) % 2147483647);
  }
  ASSERT_TRUE(loader.Append(batch.columns).ok());
  ASSERT_TRUE(loader.Finish(db->system()).ok());
  ASSERT_TRUE(db->Commit(txn).ok());
}

struct BudgetOutcome {
  double spent = 0;
  double last_finish = 0;
  uint64_t completed = 0;
  uint64_t shed_budget = 0;
  uint64_t deferred = 0;
  uint64_t deferred_shed = 0;
};

// Submits `jobs` identical full scans, serially spaced, against a tenant
// budget; returns what the engine did with them.
BudgetOutcome RunBudgetWorkload(bool predictive, double budget,
                                double prior, double spacing, int jobs) {
  SimEnvironment env;
  Database::Options db_options;
  db_options.user_storage = UserStorage::kObjectStore;
  db_options.page_size = 8192;
  db_options.blockmap_fanout = 16;
  db_options.enable_ocm = false;
  db_options.buffer_capacity_override = 8 * 8192;
  Database db(&env, InstanceProfile::M5ad4xlarge(), db_options);
  LoadScrambled(&db, 40000);

  WorkloadEngine::Options options;
  options.predictive_admission = predictive;
  options.spend_prior_usd = prior;
  WorkloadEngine::TenantConfig tenant;
  tenant.name = "etl";
  tenant.cost_budget_usd = budget;
  WorkloadEngine engine({&db}, options, {tenant});
  BudgetOutcome out;
  engine.set_completion_hook([&out](const WorkloadEngine::Completion& c) {
    if (!c.shed) out.last_finish = std::max(out.last_finish, c.finish);
  });
  auto body = [](Session*, QueryContext* ctx) {
    CLOUDIQ_ASSIGN_OR_RETURN(TableReader reader, ctx->OpenTable(kEtlTable));
    return ScanTable(ctx, &reader, {"k"}).status();
  };
  for (int i = 0; i < jobs; ++i) {
    engine.Submit("etl", "scan", spacing * i, body);
  }
  EXPECT_TRUE(engine.RunUntilIdle().ok());

  WorkloadEngine::TenantCounts counts = engine.Counts("etl");
  out.spent = counts.spent_usd;
  out.completed = counts.completed;
  out.shed_budget = counts.shed_budget;
  auto& stats = env.telemetry().stats();
  out.deferred = stats.counter("workload.etl.costopt_deferred").value();
  out.deferred_shed =
      stats.counter("workload.etl.costopt_deferred_shed").value();
  return out;
}

TEST(PredictiveAdmissionTest, DefersInsteadOfOvershooting) {
  // Calibrate one scan's cost and duration with an unlimited budget.
  BudgetOutcome cal = RunBudgetWorkload(false, 0, 0, 0, 1);
  ASSERT_EQ(cal.completed, 1u);
  ASSERT_GT(cal.spent, 0.0);
  double budget = 2.2 * cal.spent;   // room for two scans, not three
  double spacing = 2.0 * cal.last_finish;

  // Cost-blind admission: history alone says there is headroom after two
  // completions, so the third scan is admitted and blows the budget.
  BudgetOutcome blind = RunBudgetWorkload(false, budget, 0, spacing, 4);
  EXPECT_EQ(blind.completed, 3u);
  EXPECT_EQ(blind.deferred, 0u);
  EXPECT_GT(blind.spent, budget);

  // Predictive admission: the third scan's predicted spend would breach
  // the budget, so it is deferred, re-priced as completions land, and
  // finally shed — spend never crosses the budget.
  BudgetOutcome aware =
      RunBudgetWorkload(true, budget, cal.spent, spacing, 4);
  EXPECT_EQ(aware.completed, 2u);
  EXPECT_GE(aware.deferred, 1u);
  EXPECT_GE(aware.deferred_shed, 1u);
  EXPECT_EQ(aware.shed_budget, 2u);  // the parked jobs shed as budget
  EXPECT_LE(aware.spent, budget);

  // Deterministic: the same predictive run re-executed lands on the
  // exact same spend and decisions.
  BudgetOutcome again =
      RunBudgetWorkload(true, budget, cal.spent, spacing, 4);
  EXPECT_DOUBLE_EQ(again.spent, aware.spent);
  EXPECT_EQ(again.completed, aware.completed);
  EXPECT_EQ(again.deferred, aware.deferred);
}

}  // namespace
}  // namespace cloudiq
