#include <gtest/gtest.h>

#include "columnar/date_index.h"
#include "columnar/encoding.h"
#include "columnar/hg_index.h"
#include "columnar/table_loader.h"
#include "columnar/table_reader.h"
#include "columnar/text_index.h"
#include "columnar/value.h"
#include "exec/batch.h"
#include "tests/test_util.h"
#include "txn/transaction_manager.h"

namespace cloudiq {
namespace {

using testing_util::SingleNodeHarness;

TEST(ValueTest, DateRoundTrip) {
  int64_t days = DaysFromCivil(1995, 6, 17);
  int y, m, d;
  CivilFromDays(days, &y, &m, &d);
  EXPECT_EQ(y, 1995);
  EXPECT_EQ(m, 6);
  EXPECT_EQ(d, 17);
  EXPECT_EQ(DaysFromCivil(1970, 1, 1), 0);
  EXPECT_LT(DaysFromCivil(1992, 1, 1), DaysFromCivil(1998, 8, 2));
}

TEST(ValueTest, DecimalScaling) {
  EXPECT_EQ(DecimalFromDouble(12.34), 1234);
  EXPECT_DOUBLE_EQ(DecimalToDouble(1234), 12.34);
  EXPECT_EQ(DecimalFromDouble(-1.005), -100);  // rounds toward nearest
}

// Property sweep: n-bit packing round-trips at every width.
class NBitPackTest : public ::testing::TestWithParam<int> {};

TEST_P(NBitPackTest, RoundTrip) {
  int width = GetParam();
  Rng rng(width);
  std::vector<uint64_t> values;
  uint64_t mask = width == 64 ? ~uint64_t{0}
                              : ((uint64_t{1} << width) - 1);
  for (int i = 0; i < 500; ++i) values.push_back(rng.Next() & mask);
  std::vector<uint8_t> packed = NBitPack(values, width);
  EXPECT_LE(packed.size(), (values.size() * width + 7) / 8);
  std::vector<uint64_t> back = NBitUnpack(packed, width, values.size());
  EXPECT_EQ(back, values);
}

INSTANTIATE_TEST_SUITE_P(Widths, NBitPackTest,
                         ::testing::Values(1, 2, 3, 5, 7, 8, 13, 16, 21,
                                           32, 47, 63, 64));

TEST(EncodingTest, BitWidthFor) {
  EXPECT_EQ(BitWidthFor(0), 1);
  EXPECT_EQ(BitWidthFor(1), 1);
  EXPECT_EQ(BitWidthFor(2), 2);
  EXPECT_EQ(BitWidthFor(255), 8);
  EXPECT_EQ(BitWidthFor(256), 9);
  EXPECT_EQ(BitWidthFor(~uint64_t{0}), 64);
}

TEST(EncodingTest, IntColumnFrameOfReference) {
  ColumnVector col;
  col.type = ColumnType::kInt64;
  for (int64_t i = 0; i < 1000; ++i) col.ints.push_back(1000000 + i % 50);
  ZoneMapEntry zone;
  std::vector<uint8_t> page = EncodeColumnPage(col, 0, 1000, &zone);
  // 50 distinct deltas -> 6 bits/value: far below 8 bytes/value.
  EXPECT_LT(page.size(), 1000u);
  EXPECT_EQ(zone.min_int, 1000000);
  EXPECT_EQ(zone.max_int, 1000049);
  EXPECT_EQ(zone.row_count, 1000u);
  Result<ColumnVector> back = DecodeColumnPage(page);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->ints, col.ints);
}

TEST(EncodingTest, SortedColumnsDeltaEncode) {
  // A sorted wide-range column (e.g., orderkey during load) compresses
  // via deltas far below frame-of-reference width.
  ColumnVector col;
  col.type = ColumnType::kInt64;
  int64_t v = 1;
  Rng rng(11);
  for (int i = 0; i < 4000; ++i) {
    col.ints.push_back(v);
    v += 1 + static_cast<int64_t>(rng.Uniform(3));  // range ~12000
  }
  ZoneMapEntry zone;
  std::vector<uint8_t> page = EncodeColumnPage(col, 0, 4000, &zone);
  // Deltas fit 2 bits vs ~14 bits frame-of-reference.
  EXPECT_LT(page.size(), 4000u * 4 / 8);
  Result<ColumnVector> back = DecodeColumnPage(page);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->ints, col.ints);

  // Non-monotone data still round-trips through the FOR path.
  std::swap(col.ints[100], col.ints[200]);
  page = EncodeColumnPage(col, 0, 4000, &zone);
  back = DecodeColumnPage(page);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->ints, col.ints);
}

TEST(EncodingTest, SingleValueAndEmptyPages) {
  ColumnVector col;
  col.type = ColumnType::kInt64;
  col.ints = {42};
  ZoneMapEntry zone;
  Result<ColumnVector> one = DecodeColumnPage(EncodeColumnPage(col, 0, 1,
                                                               &zone));
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(one->ints, std::vector<int64_t>{42});
  Result<ColumnVector> none = DecodeColumnPage(EncodeColumnPage(col, 0, 0,
                                                                &zone));
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->ints.empty());
}

TEST(EncodingTest, StringDictionaryWhenLowCardinality) {
  ColumnVector col;
  col.type = ColumnType::kString;
  const char* vals[3] = {"MAIL", "SHIP", "TRUCK"};
  for (int i = 0; i < 2000; ++i) col.strings.push_back(vals[i % 3]);
  ZoneMapEntry zone;
  std::vector<uint8_t> page = EncodeColumnPage(col, 0, 2000, &zone);
  EXPECT_LT(page.size(), 2000u);  // ~2 bits/value + tiny dictionary
  EXPECT_EQ(zone.min_string, "MAIL");
  EXPECT_EQ(zone.max_string, "TRUCK");
  Result<ColumnVector> back = DecodeColumnPage(page);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->strings, col.strings);
}

TEST(EncodingTest, StringRawWhenHighCardinality) {
  ColumnVector col;
  col.type = ColumnType::kString;
  for (int i = 0; i < 200; ++i) {
    col.strings.push_back("unique-comment-" + std::to_string(i * 7919));
  }
  ZoneMapEntry zone;
  std::vector<uint8_t> page = EncodeColumnPage(col, 0, 200, &zone);
  Result<ColumnVector> back = DecodeColumnPage(page);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->strings, col.strings);
}

TEST(EncodingTest, DoubleColumnRoundTrip) {
  ColumnVector col;
  col.type = ColumnType::kDouble;
  Rng rng(5);
  for (int i = 0; i < 300; ++i) col.doubles.push_back(rng.NextDouble() * 1e6);
  ZoneMapEntry zone;
  std::vector<uint8_t> page = EncodeColumnPage(col, 0, 300, &zone);
  Result<ColumnVector> back = DecodeColumnPage(page);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->doubles, col.doubles);
  EXPECT_LE(zone.min_double, zone.max_double);
}

TEST(EncodingTest, SubrangeEncoding) {
  ColumnVector col;
  col.type = ColumnType::kInt64;
  for (int64_t i = 0; i < 100; ++i) col.ints.push_back(i);
  ZoneMapEntry zone;
  std::vector<uint8_t> page = EncodeColumnPage(col, 20, 40, &zone);
  Result<ColumnVector> back = DecodeColumnPage(page);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->ints.size(), 20u);
  EXPECT_EQ(back->ints.front(), 20);
  EXPECT_EQ(back->ints.back(), 39);
  EXPECT_EQ(zone.min_int, 20);
  EXPECT_EQ(zone.max_int, 39);
}

class TableStoreTest : public ::testing::Test {
 protected:
  TableStoreTest() {
    TransactionManager::Options opts;
    opts.blockmap_fanout = 16;
    opts.buffer_capacity_bytes = 4 << 20;
    txn_mgr_ = std::make_unique<TransactionManager>(h_.storage.get(),
                                                    &h_.system, opts);
    txn_mgr_->set_commit_listener(
        [this](NodeId node, const IntervalSet& keys) {
          h_.keygen.OnTransactionCommitted(node, keys);
        });
  }

  TableSchema TestSchema() {
    TableSchema schema;
    schema.name = "events";
    schema.table_id = 42;
    schema.columns = {{"id", ColumnType::kInt64},
                      {"score", ColumnType::kDouble},
                      {"tag", ColumnType::kString}};
    schema.partition_column = 0;
    schema.partition_bounds = {500};  // two partitions
    schema.hg_index_columns = {0};
    return schema;
  }

  Batch MakeRows(int64_t first, int64_t count) {
    Batch batch;
    ColumnVector ids{ColumnType::kInt64, {}, {}, {}};
    ColumnVector scores{ColumnType::kDouble, {}, {}, {}};
    ColumnVector tags{ColumnType::kString, {}, {}, {}};
    for (int64_t i = first; i < first + count; ++i) {
      ids.ints.push_back(i);
      scores.doubles.push_back(i * 0.5);
      tags.strings.push_back(i % 2 == 0 ? "even" : "odd");
    }
    batch.AddColumn("id", std::move(ids));
    batch.AddColumn("score", std::move(scores));
    batch.AddColumn("tag", std::move(tags));
    return batch;
  }

  SingleNodeHarness h_;
  std::unique_ptr<TransactionManager> txn_mgr_;
};

TEST_F(TableStoreTest, LoadThenReadBack) {
  Transaction* txn = txn_mgr_->Begin();
  TableLoader loader(txn_mgr_.get(), txn, h_.cloud_space, TestSchema());
  ASSERT_TRUE(loader.Append(MakeRows(0, 600).columns).ok());
  ASSERT_TRUE(loader.Append(MakeRows(600, 400).columns).ok());
  EXPECT_EQ(loader.rows_appended(), 1000u);
  EXPECT_GT(loader.TakeCpuSeconds(), 0.0);
  Result<TableMeta> meta = loader.Finish(&h_.system);
  ASSERT_TRUE(meta.ok()) << meta.status().ToString();
  ASSERT_TRUE(txn_mgr_->Commit(txn).ok());

  // Rows routed by range partition: ids < 500 in partition 0.
  EXPECT_EQ(meta->partitions.size(), 2u);
  EXPECT_EQ(meta->partitions[0].row_count, 500u);
  EXPECT_EQ(meta->partitions[1].row_count, 500u);
  EXPECT_EQ(meta->TotalRows(), 1000u);

  Transaction* reader_txn = txn_mgr_->Begin();
  Result<TableReader> reader =
      TableReader::Open(txn_mgr_.get(), reader_txn, &h_.system, 42);
  ASSERT_TRUE(reader.ok());
  // Columns page independently; reconstruct each column fully and align
  // by row position.
  int64_t seen = 0;
  for (size_t p = 0; p < 2; ++p) {
    auto read_whole = [&](int column) {
      std::vector<int64_t> ints;
      std::vector<std::string> strings;
      const SegmentMeta& seg = reader->meta().partitions[p].columns[column];
      for (size_t page = 0; page < seg.page_rows.size(); ++page) {
        Result<ColumnVector> vec = reader->ReadPage(p, column, page);
        EXPECT_TRUE(vec.ok());
        ints.insert(ints.end(), vec->ints.begin(), vec->ints.end());
        strings.insert(strings.end(), vec->strings.begin(),
                       vec->strings.end());
      }
      return std::make_pair(ints, strings);
    };
    auto [ids, unused] = read_whole(0);
    auto [unused2, tags] = read_whole(2);
    ASSERT_EQ(ids.size(), tags.size());
    for (size_t r = 0; r < ids.size(); ++r) {
      EXPECT_EQ(tags[r], ids[r] % 2 == 0 ? "even" : "odd");
      ++seen;
    }
  }
  EXPECT_EQ(seen, 1000);
  ASSERT_TRUE(txn_mgr_->Commit(reader_txn).ok());
}

TEST_F(TableStoreTest, ZoneMapPruning) {
  Transaction* txn = txn_mgr_->Begin();
  TableLoader loader(txn_mgr_.get(), txn, h_.cloud_space, TestSchema());
  ASSERT_TRUE(loader.Append(MakeRows(0, 1000).columns).ok());
  Result<TableMeta> meta = loader.Finish(&h_.system);
  ASSERT_TRUE(meta.ok());
  ASSERT_TRUE(txn_mgr_->Commit(txn).ok());

  Transaction* rtxn = txn_mgr_->Begin();
  Result<TableReader> reader =
      TableReader::Open(txn_mgr_.get(), rtxn, &h_.system, 42);
  ASSERT_TRUE(reader.ok());
  // Sequential ids: a narrow range must prune most pages, and surviving
  // pages must cover the full range (soundness).
  std::vector<uint64_t> pages = reader->PrunePagesInt(0, 0, 100, 120);
  size_t total_pages =
      reader->meta().partitions[0].columns[0].zones.size();
  ASSERT_GT(total_pages, 1u);
  EXPECT_LT(pages.size(), total_pages);
  int64_t found = 0;
  for (uint64_t page : pages) {
    Result<ColumnVector> ids = reader->ReadPage(0, 0, page);
    ASSERT_TRUE(ids.ok());
    for (int64_t v : ids->ints) {
      if (v >= 100 && v <= 120) ++found;
    }
  }
  EXPECT_EQ(found, 21);
  ASSERT_TRUE(txn_mgr_->Commit(rtxn).ok());
}

TEST_F(TableStoreTest, HgIndexLookupMatchesScan) {
  Transaction* txn = txn_mgr_->Begin();
  TableLoader loader(txn_mgr_.get(), txn, h_.cloud_space, TestSchema());
  ASSERT_TRUE(loader.Append(MakeRows(0, 1000).columns).ok());
  Result<TableMeta> meta = loader.Finish(&h_.system);
  ASSERT_TRUE(meta.ok());
  ASSERT_TRUE(txn_mgr_->Commit(txn).ok());

  Transaction* rtxn = txn_mgr_->Begin();
  Result<TableReader> reader =
      TableReader::Open(txn_mgr_.get(), rtxn, &h_.system, 42);
  ASSERT_TRUE(reader.ok());
  // id 137 lives in partition 0 at partition-local row 137.
  Result<IntervalSet> rows = reader->IndexLookup(0, 0, 137);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->Count(), 1u);
  EXPECT_TRUE(rows->Contains(137));
  // Range lookup.
  Result<IntervalSet> range = reader->IndexLookupRange(0, 0, 10, 19);
  ASSERT_TRUE(range.ok());
  EXPECT_EQ(range->Count(), 10u);
  // Missing value.
  Result<IntervalSet> missing = reader->IndexLookup(0, 0, 100000);
  ASSERT_TRUE(missing.ok());
  EXPECT_TRUE(missing->empty());
  // Unindexed column is an error.
  EXPECT_FALSE(reader->IndexLookup(0, 1, 0).ok());
  ASSERT_TRUE(txn_mgr_->Commit(rtxn).ok());
}

TEST_F(TableStoreTest, DateIndexMatchesColumnScan) {
  TableSchema schema;
  schema.name = "events";
  schema.table_id = 55;
  schema.columns = {{"id", ColumnType::kInt64},
                    {"day", ColumnType::kDate}};
  schema.date_index_columns = {1};

  Transaction* txn = txn_mgr_->Begin();
  TableLoader loader(txn_mgr_.get(), txn, h_.cloud_space, schema);
  Batch batch;
  batch.AddColumn("id", {ColumnType::kInt64, {}, {}, {}});
  batch.AddColumn("day", {ColumnType::kDate, {}, {}, {}});
  Rng rng(42);
  std::vector<int64_t> days;
  for (int64_t i = 0; i < 2000; ++i) {
    batch.columns[0].ints.push_back(i);
    int64_t d = DaysFromCivil(1995, 1, 1) + rng.Uniform(3 * 365);
    batch.columns[1].ints.push_back(d);
    days.push_back(d);
  }
  ASSERT_TRUE(loader.Append(batch.columns).ok());
  ASSERT_TRUE(loader.Finish(&h_.system).ok());
  ASSERT_TRUE(txn_mgr_->Commit(txn).ok());

  Transaction* rtxn = txn_mgr_->Begin();
  Result<TableReader> reader =
      TableReader::Open(txn_mgr_.get(), rtxn, &h_.system, 55);
  ASSERT_TRUE(reader.ok());

  // One calendar month.
  Result<IntervalSet> june = reader->DateIndexMonth(0, 1, 1996, 6);
  ASSERT_TRUE(june.ok()) << june.status().ToString();
  uint64_t expected_june = 0;
  for (size_t r = 0; r < days.size(); ++r) {
    int y, m, d;
    CivilFromDays(days[r], &y, &m, &d);
    if (y == 1996 && m == 6) {
      ++expected_june;
      EXPECT_TRUE(june->Contains(r)) << "row " << r;
    }
  }
  EXPECT_EQ(june->Count(), expected_june);
  EXPECT_GT(expected_june, 0u);

  // Whole-year range.
  Result<IntervalSet> y96_97 = reader->DateIndexYears(0, 1, 1996, 1997);
  ASSERT_TRUE(y96_97.ok());
  uint64_t expected_years = 0;
  for (int64_t d : days) {
    int y, m, dd;
    CivilFromDays(d, &y, &m, &dd);
    if (y >= 1996 && y <= 1997) ++expected_years;
  }
  EXPECT_EQ(y96_97->Count(), expected_years);

  // Empty month and unindexed column.
  Result<IntervalSet> empty = reader->DateIndexMonth(0, 1, 1970, 1);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
  EXPECT_FALSE(reader->DateIndexMonth(0, 0, 1996, 6).ok());
  ASSERT_TRUE(txn_mgr_->Commit(rtxn).ok());
}

TEST(TextIndexTest, TokenizerSplitsAndLowercases) {
  EXPECT_EQ(TextIndex::Tokenize("Special, requests... NOTED-here"),
            (std::vector<std::string>{"special", "requests", "noted",
                                      "here"}));
  EXPECT_TRUE(TextIndex::Tokenize("  ...  ").empty());
  EXPECT_EQ(TextIndex::Tokenize("abc123"),
            std::vector<std::string>{"abc123"});
}

TEST_F(TableStoreTest, TextIndexFindsWordCandidates) {
  TableSchema schema;
  schema.name = "notes";
  schema.table_id = 66;
  schema.columns = {{"id", ColumnType::kInt64},
                    {"note", ColumnType::kString}};
  schema.text_index_columns = {1};

  Transaction* txn = txn_mgr_->Begin();
  TableLoader loader(txn_mgr_.get(), txn, h_.cloud_space, schema);
  Batch batch;
  batch.AddColumn("id", {ColumnType::kInt64, {}, {}, {}});
  batch.AddColumn("note", {ColumnType::kString, {}, {}, {}});
  const char* notes[5] = {
      "regular delivery as planned",
      "special requests were made",         // both words, in order
      "requests from a special customer",   // both words, wrong order
      "nothing special here",               // one word
      "ordinary requests only",              // the other word
  };
  for (int64_t i = 0; i < 500; ++i) {
    batch.columns[0].ints.push_back(i);
    batch.columns[1].strings.push_back(notes[i % 5]);
  }
  ASSERT_TRUE(loader.Append(batch.columns).ok());
  ASSERT_TRUE(loader.Finish(&h_.system).ok());
  ASSERT_TRUE(txn_mgr_->Commit(txn).ok());

  Transaction* rtxn = txn_mgr_->Begin();
  Result<TableReader> reader =
      TableReader::Open(txn_mgr_.get(), rtxn, &h_.system, 66);
  ASSERT_TRUE(reader.ok());

  // Single word: rows 1, 2, 3 of each 5-cycle contain "special".
  Result<IntervalSet> special =
      reader->TextIndexAllWords(0, 1, {"special"});
  ASSERT_TRUE(special.ok()) << special.status().ToString();
  EXPECT_EQ(special->Count(), 300u);

  // Conjunction: rows with BOTH words = the 1- and 2-mod-5 rows.
  Result<IntervalSet> both =
      reader->TextIndexAllWords(0, 1, {"special", "requests"});
  ASSERT_TRUE(both.ok());
  EXPECT_EQ(both->Count(), 200u);
  EXPECT_TRUE(both->Contains(1));
  EXPECT_TRUE(both->Contains(2));
  EXPECT_FALSE(both->Contains(0));

  // Missing word and unindexed column.
  Result<IntervalSet> none =
      reader->TextIndexAllWords(0, 1, {"special", "zebra"});
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());
  EXPECT_FALSE(reader->TextIndexAllWords(0, 0, {"x"}).ok());
  ASSERT_TRUE(txn_mgr_->Commit(rtxn).ok());
}

TEST_F(TableStoreTest, PagesRespectPageSizeLimit) {
  // Long strings force frequent page cuts; every page must still fit.
  TableSchema schema;
  schema.name = "blobs";
  schema.table_id = 77;
  schema.columns = {{"id", ColumnType::kInt64},
                    {"body", ColumnType::kString}};
  Transaction* txn = txn_mgr_->Begin();
  TableLoader loader(txn_mgr_.get(), txn, h_.cloud_space, schema);
  Batch batch;
  ColumnVector ids{ColumnType::kInt64, {}, {}, {}};
  ColumnVector bodies{ColumnType::kString, {}, {}, {}};
  Rng rng(1);
  for (int i = 0; i < 300; ++i) {
    ids.ints.push_back(i);
    std::string body(300 + rng.Uniform(200), 'x');
    for (auto& ch : body) ch = static_cast<char>('a' + rng.Uniform(26));
    bodies.strings.push_back(std::move(body));
  }
  batch.AddColumn("id", std::move(ids));
  batch.AddColumn("body", std::move(bodies));
  ASSERT_TRUE(loader.Append(batch.columns).ok());
  Result<TableMeta> meta = loader.Finish(&h_.system);
  ASSERT_TRUE(meta.ok()) << meta.status().ToString();
  ASSERT_TRUE(txn_mgr_->Commit(txn).ok());
  EXPECT_GT(meta->partitions[0].columns[1].page_rows.size(), 1u);
}

TEST_F(TableStoreTest, SchemaSerializationRoundTrip) {
  TableMeta meta;
  meta.schema = TestSchema();
  PartitionMeta pm;
  pm.row_count = 7;
  SegmentMeta seg;
  seg.object_id = 123;
  seg.row_count = 7;
  ZoneMapEntry zone;
  zone.min_int = -5;
  zone.max_int = 12;
  zone.min_string = "aa";
  zone.max_string = "zz";
  zone.row_count = 7;
  seg.zones.push_back(zone);
  seg.page_rows.push_back(7);
  pm.columns.push_back(seg);
  pm.index_objects.push_back(456);
  pm.index_page_ranges.push_back({{1, 9}, {10, 20}});
  meta.partitions.push_back(pm);

  TableMeta back = TableMeta::Deserialize(meta.Serialize());
  EXPECT_EQ(back.schema.name, "events");
  EXPECT_EQ(back.schema.table_id, 42u);
  EXPECT_EQ(back.schema.partition_bounds, std::vector<int64_t>{500});
  EXPECT_EQ(back.schema.hg_index_columns, std::vector<int>{0});
  ASSERT_EQ(back.partitions.size(), 1u);
  EXPECT_EQ(back.partitions[0].columns[0].object_id, 123u);
  EXPECT_EQ(back.partitions[0].columns[0].zones[0].min_int, -5);
  EXPECT_EQ(back.partitions[0].columns[0].zones[0].max_string, "zz");
  EXPECT_EQ(back.partitions[0].index_page_ranges[0][1].second, 20);
}

}  // namespace
}  // namespace cloudiq
