// Property-style sweeps over the stack's central invariants:
//  * load -> read round trips hold for every page size;
//  * correctness is independent of eventual-consistency aggressiveness
//    (stale reads never happen; retries absorb visibility races);
//  * after arbitrary committed/rolled-back/dropped workloads plus GC,
//    the object store holds exactly the reachable set;
//  * crash recovery preserves every committed table and collects every
//    orphan, wherever the crash lands;
//  * query results do not depend on the buffer cache capacity;
//  * the page codec never crashes on corrupted input.

#include <gtest/gtest.h>

#include <set>

#include "engine/consistency_check.h"
#include "engine/database.h"
#include "exec/executor.h"
#include "store/page_codec.h"
#include "tests/test_util.h"

namespace cloudiq {
namespace {

TableSchema KvSchema(uint64_t table_id) {
  TableSchema schema;
  schema.name = "t" + std::to_string(table_id);
  schema.table_id = table_id;
  schema.columns = {{"k", ColumnType::kInt64},
                    {"s", ColumnType::kString},
                    {"d", ColumnType::kDouble}};
  return schema;
}

Status LoadKv(Database* db, uint64_t table_id, int64_t rows,
              uint64_t seed) {
  Transaction* txn = db->Begin();
  TableLoader loader = db->NewTableLoader(txn, KvSchema(table_id));
  Rng rng(seed);
  Batch batch;
  batch.AddColumn("k", {ColumnType::kInt64, {}, {}, {}});
  batch.AddColumn("s", {ColumnType::kString, {}, {}, {}});
  batch.AddColumn("d", {ColumnType::kDouble, {}, {}, {}});
  for (int64_t i = 0; i < rows; ++i) {
    batch.columns[0].ints.push_back(i);
    batch.columns[1].strings.push_back(
        "row-" + std::to_string(seed) + "-" + std::to_string(i % 37));
    batch.columns[2].doubles.push_back(rng.NextDouble());
  }
  CLOUDIQ_RETURN_IF_ERROR(loader.Append(batch.columns));
  CLOUDIQ_RETURN_IF_ERROR(loader.Finish(db->system()).status());
  return db->Commit(txn);
}

// Scans table `table_id` and returns a content fingerprint.
uint64_t FingerprintTable(Database* db, uint64_t table_id) {
  Transaction* txn = db->Begin();
  QueryContext ctx = db->NewQueryContext(txn);
  Result<TableReader> reader = ctx.OpenTable(table_id);
  EXPECT_TRUE(reader.ok()) << reader.status().ToString();
  Result<Batch> rows = ScanTable(&ctx, &*reader, {"k", "s"});
  EXPECT_TRUE(rows.ok()) << rows.status().ToString();
  uint64_t fp = 1469598103934665603ULL;
  for (size_t r = 0; r < rows->rows(); ++r) {
    fp = (fp ^ static_cast<uint64_t>(rows->Int("k", r))) * 1099511628211ULL;
    for (char c : rows->Str("s", r)) {
      fp = (fp ^ static_cast<uint8_t>(c)) * 1099511628211ULL;
    }
  }
  EXPECT_TRUE(db->Commit(txn).ok());
  return fp;
}

// ---------------------------------------------------------------------------
// Page-size sweep.
// ---------------------------------------------------------------------------

class PageSizeSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PageSizeSweep, LoadReadRoundTrip) {
  SimEnvironment env;
  Database::Options options;
  options.user_storage = UserStorage::kObjectStore;
  options.page_size = GetParam();
  Database db(&env, InstanceProfile::M5ad4xlarge(), options);
  ASSERT_TRUE(LoadKv(&db, 1, 3000, /*seed=*/GetParam()).ok());

  Transaction* txn = db.Begin();
  QueryContext ctx = db.NewQueryContext(txn);
  Result<TableReader> reader = ctx.OpenTable(1);
  ASSERT_TRUE(reader.ok());
  Result<Batch> rows = ScanTable(&ctx, &*reader, {"k", "s", "d"});
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->rows(), 3000u);
  for (size_t r = 0; r < rows->rows(); ++r) {
    ASSERT_EQ(rows->Int("k", r), static_cast<int64_t>(r));
    ASSERT_EQ(rows->Str("s", r),
              "row-" + std::to_string(GetParam()) + "-" +
                  std::to_string(r % 37));
  }
  ASSERT_TRUE(db.Commit(txn).ok());
  EXPECT_EQ(env.object_store().stats().overwrites, 0u);
}

INSTANTIATE_TEST_SUITE_P(PageSizes, PageSizeSweep,
                         ::testing::Values(2048, 8192, 65536, 524288));

// ---------------------------------------------------------------------------
// Eventual-consistency aggressiveness sweep.
// ---------------------------------------------------------------------------

struct LagConfig {
  double probability;
  double mean_lag;
};

class ConsistencySweep : public ::testing::TestWithParam<LagConfig> {};

TEST_P(ConsistencySweep, CorrectUnderAnyVisibilityLag) {
  ObjectStoreOptions store_options;
  store_options.lag_probability = GetParam().probability;
  store_options.mean_visibility_lag = GetParam().mean_lag;
  SimEnvironment env(store_options);
  Database::Options options;
  options.user_storage = UserStorage::kObjectStore;
  options.page_size = 16384;
  Database db(&env, InstanceProfile::M5ad4xlarge(), options);

  ASSERT_TRUE(LoadKv(&db, 1, 2000, 99).ok());
  uint64_t fp1 = FingerprintTable(&db, 1);
  // Update-then-read immediately: the read-after-write window is where
  // the races live.
  ASSERT_TRUE(LoadKv(&db, 2, 500, 7).ok());
  FingerprintTable(&db, 2);
  EXPECT_EQ(FingerprintTable(&db, 1), fp1);
  // The invariant the whole design exists for:
  EXPECT_EQ(env.object_store().stats().stale_reads, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Lags, ConsistencySweep,
    ::testing::Values(LagConfig{0.0, 0.0}, LagConfig{0.05, 0.1},
                      LagConfig{0.5, 0.5}, LagConfig{1.0, 1.0}));

// ---------------------------------------------------------------------------
// Randomized GC completeness.
// ---------------------------------------------------------------------------

class GcWorkloadSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GcWorkloadSweep, StoreHoldsExactlyTheReachableSet) {
  SimEnvironment env;
  Database::Options options;
  options.user_storage = UserStorage::kObjectStore;
  options.page_size = 8192;
  options.snapshot_retention_seconds = 0;  // no deferred retention
  Database db(&env, InstanceProfile::M5ad4xlarge(), options);
  Rng rng(GetParam());

  std::set<uint64_t> live_tables;
  uint64_t next_table = 1;
  for (int round = 0; round < 12; ++round) {
    double dice = rng.NextDouble();
    if (dice < 0.5 || live_tables.empty()) {
      uint64_t id = next_table++;
      int64_t rows = 200 + static_cast<int64_t>(rng.Uniform(2000));
      ASSERT_TRUE(LoadKv(&db, id, rows, GetParam() * 100 + id).ok());
      live_tables.insert(id);
    } else if (dice < 0.75) {
      // Drop a random table.
      auto it = live_tables.begin();
      std::advance(it, rng.Uniform(live_tables.size()));
      Transaction* txn = db.Begin();
      for (size_t c = 0; c < 3; ++c) {
        ASSERT_TRUE(db.txn_mgr()
                        .DropObject(txn, TableLoader::ObjectIdFor(*it, 0, c))
                        .ok());
      }
      ASSERT_TRUE(db.Commit(txn).ok());
      live_tables.erase(it);
    } else {
      // Start a load and roll it back.
      uint64_t id = next_table++;
      Transaction* txn = db.Begin();
      TableLoader loader = db.NewTableLoader(txn, KvSchema(id));
      Batch batch;
      batch.AddColumn("k", {ColumnType::kInt64, {}, {}, {}});
      batch.AddColumn("s", {ColumnType::kString, {}, {}, {}});
      batch.AddColumn("d", {ColumnType::kDouble, {}, {}, {}});
      for (int64_t i = 0; i < 500; ++i) {
        batch.columns[0].ints.push_back(i);
        batch.columns[1].strings.push_back("x");
        batch.columns[2].doubles.push_back(0.5);
      }
      ASSERT_TRUE(loader.Append(batch.columns).ok());
      ASSERT_TRUE(loader.Finish(db.system()).ok());
      ASSERT_TRUE(db.txn_mgr().buffer().FlushTxn(txn->id).ok());
      ASSERT_TRUE(db.Rollback(txn).ok());
    }
  }
  ASSERT_TRUE(db.RunGarbageCollection().ok());
  ASSERT_TRUE(db.snapshot_mgr()->CollectExpired().ok());

  // Reachable set = nodes + data pages of every live table, via the
  // committed catalog.
  uint64_t reachable = 0;
  Transaction* probe = db.Begin();
  for (uint64_t id : live_tables) {
    for (size_t c = 0; c < 3; ++c) {
      Result<std::unique_ptr<StorageObject>> obj =
          db.txn_mgr().OpenForRead(probe,
                                   TableLoader::ObjectIdFor(id, 0, c));
      ASSERT_TRUE(obj.ok());
      std::vector<PhysicalLoc> nodes, pages;
      ASSERT_TRUE((*obj)->blockmap().CollectReachable(&nodes, &pages).ok());
      reachable += nodes.size() + pages.size();
    }
  }
  ASSERT_TRUE(db.Commit(probe).ok());
  // The snapshot manager's metadata object is legitimately live too.
  uint64_t metadata_objects = 0;
  for (const std::string& key : env.object_store().LiveKeys()) {
    if (key.rfind("snapmgr/", 0) == 0) ++metadata_objects;
  }
  EXPECT_EQ(env.object_store().LiveObjectCount(),
            reachable + metadata_objects)
      << "seed " << GetParam();
  EXPECT_EQ(env.object_store().stats().overwrites, 0u);

  // Every surviving table still reads back.
  for (uint64_t id : live_tables) FingerprintTable(&db, id);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GcWorkloadSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13));

// ---------------------------------------------------------------------------
// Crash-anywhere recovery.
// ---------------------------------------------------------------------------

class CrashPointSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CrashPointSweep, CommittedDataSurvivesOrphansDie) {
  SimEnvironment env;
  Database::Options options;
  options.user_storage = UserStorage::kObjectStore;
  options.page_size = 8192;
  options.snapshot_retention_seconds = 0;
  Database db(&env, InstanceProfile::M5ad4xlarge(), options);
  Rng rng(GetParam());

  std::map<uint64_t, uint64_t> committed_fps;
  int commits_before_crash = 1 + static_cast<int>(rng.Uniform(4));
  for (int i = 0; i < commits_before_crash; ++i) {
    uint64_t id = i + 1;
    ASSERT_TRUE(
        LoadKv(&db, id, 300 + rng.Uniform(1500), GetParam() + id).ok());
    committed_fps[id] = FingerprintTable(&db, id);
  }
  ASSERT_TRUE(db.Checkpoint().ok());
  ASSERT_TRUE(db.RunGarbageCollection().ok());
  ASSERT_TRUE(db.snapshot_mgr()->CollectExpired().ok());
  uint64_t committed_live = env.object_store().LiveObjectCount();

  // An in-flight transaction flushes a random number of pages... crash.
  Transaction* doomed = db.Begin();
  TableLoader loader = db.NewTableLoader(doomed, KvSchema(99));
  Batch batch;
  batch.AddColumn("k", {ColumnType::kInt64, {}, {}, {}});
  batch.AddColumn("s", {ColumnType::kString, {}, {}, {}});
  batch.AddColumn("d", {ColumnType::kDouble, {}, {}, {}});
  int64_t rows = 200 + static_cast<int64_t>(rng.Uniform(3000));
  for (int64_t i = 0; i < rows; ++i) {
    batch.columns[0].ints.push_back(i);
    batch.columns[1].strings.push_back("doomed");
    batch.columns[2].doubles.push_back(1.0);
  }
  ASSERT_TRUE(loader.Append(batch.columns).ok());
  ASSERT_TRUE(loader.Finish(db.system()).ok());
  if (rng.Bernoulli(0.7)) {
    ASSERT_TRUE(db.txn_mgr().buffer().FlushTxn(doomed->id).ok());
  }

  ASSERT_TRUE(db.CrashAndRecover().ok());

  // Orphans collected, committed data intact and bit-identical.
  EXPECT_EQ(env.object_store().LiveObjectCount(), committed_live)
      << "seed " << GetParam();
  for (const auto& [id, fp] : committed_fps) {
    EXPECT_EQ(FingerprintTable(&db, id), fp) << "table " << id;
  }

  // The full audit agrees: everything reachable reads back, nothing
  // leaked.
  Result<ConsistencyReport> audit = CheckConsistency(&db);
  ASSERT_TRUE(audit.ok());
  EXPECT_TRUE(audit->ok()) << (audit->problems.empty()
                                   ? ""
                                   : audit->problems.front());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrashPointSweep,
                         ::testing::Values(21, 34, 55, 89, 144));

// ---------------------------------------------------------------------------
// Buffer capacity independence.
// ---------------------------------------------------------------------------

class BufferCapacitySweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BufferCapacitySweep, ResultsIndependentOfCacheSize) {
  SimEnvironment env;
  Database::Options options;
  options.user_storage = UserStorage::kObjectStore;
  options.page_size = 8192;
  options.buffer_capacity_override = GetParam();
  Database db(&env, InstanceProfile::M5ad4xlarge(), options);
  ASSERT_TRUE(LoadKv(&db, 1, 4000, 1234).ok());
  // The fingerprint is capacity-invariant; churn-phase evictions and
  // re-reads must not change what a scan sees.
  EXPECT_EQ(FingerprintTable(&db, 1), FingerprintTable(&db, 1));
  static uint64_t reference_fp = 0;
  uint64_t fp = FingerprintTable(&db, 1);
  if (reference_fp == 0) {
    reference_fp = fp;
  } else {
    EXPECT_EQ(fp, reference_fp);
  }
}

INSTANTIATE_TEST_SUITE_P(Capacities, BufferCapacitySweep,
                         ::testing::Values(64 << 10, 512 << 10, 4 << 20,
                                           256 << 20));

// ---------------------------------------------------------------------------
// Codec corruption fuzz.
// ---------------------------------------------------------------------------

TEST(CodecFuzzTest, CorruptedFramesErrorCleanly) {
  Rng rng(777);
  for (int iter = 0; iter < 200; ++iter) {
    std::vector<uint8_t> payload(rng.Uniform(4000) + 1);
    for (auto& b : payload) b = static_cast<uint8_t>(rng.Next());
    std::vector<uint8_t> frame = EncodePage(payload);

    // Clean round trip.
    Result<std::vector<uint8_t>> ok = DecodePage(frame);
    ASSERT_TRUE(ok.ok());
    ASSERT_EQ(ok.value(), payload);

    // Mutate one byte: must either fail cleanly or (if the mutation hit
    // redundant bits) still decode to the original payload — never crash
    // or return wrong data.
    std::vector<uint8_t> bad = frame;
    bad[rng.Uniform(bad.size())] ^=
        static_cast<uint8_t>(1 + rng.Uniform(255));
    Result<std::vector<uint8_t>> r = DecodePage(bad);
    if (r.ok()) {
      EXPECT_EQ(r.value(), payload);
    }

    // Truncate: must fail cleanly.
    std::vector<uint8_t> truncated(frame.begin(),
                                   frame.begin() + rng.Uniform(frame.size()));
    Result<std::vector<uint8_t>> t = DecodePage(truncated);
    if (t.ok()) {
      EXPECT_EQ(t.value(), payload);
    }
  }
}

}  // namespace
}  // namespace cloudiq
