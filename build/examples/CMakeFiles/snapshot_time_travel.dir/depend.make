# Empty dependencies file for snapshot_time_travel.
# This may be replaced when dependencies are built.
