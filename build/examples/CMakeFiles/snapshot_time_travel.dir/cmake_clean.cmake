file(REMOVE_RECURSE
  "CMakeFiles/snapshot_time_travel.dir/snapshot_time_travel.cpp.o"
  "CMakeFiles/snapshot_time_travel.dir/snapshot_time_travel.cpp.o.d"
  "snapshot_time_travel"
  "snapshot_time_travel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snapshot_time_travel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
