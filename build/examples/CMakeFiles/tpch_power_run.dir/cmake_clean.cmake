file(REMOVE_RECURSE
  "CMakeFiles/tpch_power_run.dir/tpch_power_run.cpp.o"
  "CMakeFiles/tpch_power_run.dir/tpch_power_run.cpp.o.d"
  "tpch_power_run"
  "tpch_power_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpch_power_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
