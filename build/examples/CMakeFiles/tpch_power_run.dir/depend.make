# Empty dependencies file for tpch_power_run.
# This may be replaced when dependencies are built.
