# Empty dependencies file for bench_fig6_ocm_impact.
# This may be replaced when dependencies are built.
