# Empty dependencies file for bench_fig7_scale_up.
# This may be replaced when dependencies are built.
