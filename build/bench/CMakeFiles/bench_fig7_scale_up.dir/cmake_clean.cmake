file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_scale_up.dir/bench_fig7_scale_up.cc.o"
  "CMakeFiles/bench_fig7_scale_up.dir/bench_fig7_scale_up.cc.o.d"
  "bench_fig7_scale_up"
  "bench_fig7_scale_up.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_scale_up.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
