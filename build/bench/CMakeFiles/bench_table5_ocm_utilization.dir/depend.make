# Empty dependencies file for bench_table5_ocm_utilization.
# This may be replaced when dependencies are built.
