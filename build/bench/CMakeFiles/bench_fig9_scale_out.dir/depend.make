# Empty dependencies file for bench_fig9_scale_out.
# This may be replaced when dependencies are built.
