# Empty compiler generated dependencies file for bench_snapshot_latency.
# This may be replaced when dependencies are built.
