file(REMOVE_RECURSE
  "CMakeFiles/bench_snapshot_latency.dir/bench_snapshot_latency.cc.o"
  "CMakeFiles/bench_snapshot_latency.dir/bench_snapshot_latency.cc.o.d"
  "bench_snapshot_latency"
  "bench_snapshot_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_snapshot_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
