file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_prefixing.dir/bench_ablation_prefixing.cc.o"
  "CMakeFiles/bench_ablation_prefixing.dir/bench_ablation_prefixing.cc.o.d"
  "bench_ablation_prefixing"
  "bench_ablation_prefixing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_prefixing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
