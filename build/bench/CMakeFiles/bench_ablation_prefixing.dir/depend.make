# Empty dependencies file for bench_ablation_prefixing.
# This may be replaced when dependencies are built.
