file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_storage_volumes.dir/bench_table2_storage_volumes.cc.o"
  "CMakeFiles/bench_table2_storage_volumes.dir/bench_table2_storage_volumes.cc.o.d"
  "bench_table2_storage_volumes"
  "bench_table2_storage_volumes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_storage_volumes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
