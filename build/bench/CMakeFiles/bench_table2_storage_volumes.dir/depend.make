# Empty dependencies file for bench_table2_storage_volumes.
# This may be replaced when dependencies are built.
