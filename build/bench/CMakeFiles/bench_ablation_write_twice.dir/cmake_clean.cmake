file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_write_twice.dir/bench_ablation_write_twice.cc.o"
  "CMakeFiles/bench_ablation_write_twice.dir/bench_ablation_write_twice.cc.o.d"
  "bench_ablation_write_twice"
  "bench_ablation_write_twice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_write_twice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
