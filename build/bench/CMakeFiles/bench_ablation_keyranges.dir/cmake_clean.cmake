file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_keyranges.dir/bench_ablation_keyranges.cc.o"
  "CMakeFiles/bench_ablation_keyranges.dir/bench_ablation_keyranges.cc.o.d"
  "bench_ablation_keyranges"
  "bench_ablation_keyranges.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_keyranges.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
