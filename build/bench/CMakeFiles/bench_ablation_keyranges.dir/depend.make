# Empty dependencies file for bench_ablation_keyranges.
# This may be replaced when dependencies are built.
