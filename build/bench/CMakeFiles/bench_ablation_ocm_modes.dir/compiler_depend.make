# Empty compiler generated dependencies file for bench_ablation_ocm_modes.
# This may be replaced when dependencies are built.
