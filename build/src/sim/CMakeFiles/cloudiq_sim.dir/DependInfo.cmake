
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/block_volume.cc" "src/sim/CMakeFiles/cloudiq_sim.dir/block_volume.cc.o" "gcc" "src/sim/CMakeFiles/cloudiq_sim.dir/block_volume.cc.o.d"
  "/root/repo/src/sim/environment.cc" "src/sim/CMakeFiles/cloudiq_sim.dir/environment.cc.o" "gcc" "src/sim/CMakeFiles/cloudiq_sim.dir/environment.cc.o.d"
  "/root/repo/src/sim/instance_profile.cc" "src/sim/CMakeFiles/cloudiq_sim.dir/instance_profile.cc.o" "gcc" "src/sim/CMakeFiles/cloudiq_sim.dir/instance_profile.cc.o.d"
  "/root/repo/src/sim/io_scheduler.cc" "src/sim/CMakeFiles/cloudiq_sim.dir/io_scheduler.cc.o" "gcc" "src/sim/CMakeFiles/cloudiq_sim.dir/io_scheduler.cc.o.d"
  "/root/repo/src/sim/local_ssd.cc" "src/sim/CMakeFiles/cloudiq_sim.dir/local_ssd.cc.o" "gcc" "src/sim/CMakeFiles/cloudiq_sim.dir/local_ssd.cc.o.d"
  "/root/repo/src/sim/object_store.cc" "src/sim/CMakeFiles/cloudiq_sim.dir/object_store.cc.o" "gcc" "src/sim/CMakeFiles/cloudiq_sim.dir/object_store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cloudiq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
