# Empty compiler generated dependencies file for cloudiq_sim.
# This may be replaced when dependencies are built.
