file(REMOVE_RECURSE
  "libcloudiq_sim.a"
)
