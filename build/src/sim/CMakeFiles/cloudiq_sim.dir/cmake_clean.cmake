file(REMOVE_RECURSE
  "CMakeFiles/cloudiq_sim.dir/block_volume.cc.o"
  "CMakeFiles/cloudiq_sim.dir/block_volume.cc.o.d"
  "CMakeFiles/cloudiq_sim.dir/environment.cc.o"
  "CMakeFiles/cloudiq_sim.dir/environment.cc.o.d"
  "CMakeFiles/cloudiq_sim.dir/instance_profile.cc.o"
  "CMakeFiles/cloudiq_sim.dir/instance_profile.cc.o.d"
  "CMakeFiles/cloudiq_sim.dir/io_scheduler.cc.o"
  "CMakeFiles/cloudiq_sim.dir/io_scheduler.cc.o.d"
  "CMakeFiles/cloudiq_sim.dir/local_ssd.cc.o"
  "CMakeFiles/cloudiq_sim.dir/local_ssd.cc.o.d"
  "CMakeFiles/cloudiq_sim.dir/object_store.cc.o"
  "CMakeFiles/cloudiq_sim.dir/object_store.cc.o.d"
  "libcloudiq_sim.a"
  "libcloudiq_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudiq_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
