file(REMOVE_RECURSE
  "CMakeFiles/cloudiq_buffer.dir/buffer_manager.cc.o"
  "CMakeFiles/cloudiq_buffer.dir/buffer_manager.cc.o.d"
  "CMakeFiles/cloudiq_buffer.dir/prefetcher.cc.o"
  "CMakeFiles/cloudiq_buffer.dir/prefetcher.cc.o.d"
  "libcloudiq_buffer.a"
  "libcloudiq_buffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudiq_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
