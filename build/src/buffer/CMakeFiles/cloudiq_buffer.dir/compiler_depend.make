# Empty compiler generated dependencies file for cloudiq_buffer.
# This may be replaced when dependencies are built.
