file(REMOVE_RECURSE
  "libcloudiq_buffer.a"
)
