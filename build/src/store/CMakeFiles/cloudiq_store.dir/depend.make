# Empty dependencies file for cloudiq_store.
# This may be replaced when dependencies are built.
