
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/store/freelist.cc" "src/store/CMakeFiles/cloudiq_store.dir/freelist.cc.o" "gcc" "src/store/CMakeFiles/cloudiq_store.dir/freelist.cc.o.d"
  "/root/repo/src/store/object_store_io.cc" "src/store/CMakeFiles/cloudiq_store.dir/object_store_io.cc.o" "gcc" "src/store/CMakeFiles/cloudiq_store.dir/object_store_io.cc.o.d"
  "/root/repo/src/store/page_codec.cc" "src/store/CMakeFiles/cloudiq_store.dir/page_codec.cc.o" "gcc" "src/store/CMakeFiles/cloudiq_store.dir/page_codec.cc.o.d"
  "/root/repo/src/store/storage.cc" "src/store/CMakeFiles/cloudiq_store.dir/storage.cc.o" "gcc" "src/store/CMakeFiles/cloudiq_store.dir/storage.cc.o.d"
  "/root/repo/src/store/system_store.cc" "src/store/CMakeFiles/cloudiq_store.dir/system_store.cc.o" "gcc" "src/store/CMakeFiles/cloudiq_store.dir/system_store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cloudiq_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cloudiq_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
