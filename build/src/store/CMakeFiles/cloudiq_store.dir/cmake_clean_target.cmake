file(REMOVE_RECURSE
  "libcloudiq_store.a"
)
