file(REMOVE_RECURSE
  "CMakeFiles/cloudiq_store.dir/freelist.cc.o"
  "CMakeFiles/cloudiq_store.dir/freelist.cc.o.d"
  "CMakeFiles/cloudiq_store.dir/object_store_io.cc.o"
  "CMakeFiles/cloudiq_store.dir/object_store_io.cc.o.d"
  "CMakeFiles/cloudiq_store.dir/page_codec.cc.o"
  "CMakeFiles/cloudiq_store.dir/page_codec.cc.o.d"
  "CMakeFiles/cloudiq_store.dir/storage.cc.o"
  "CMakeFiles/cloudiq_store.dir/storage.cc.o.d"
  "CMakeFiles/cloudiq_store.dir/system_store.cc.o"
  "CMakeFiles/cloudiq_store.dir/system_store.cc.o.d"
  "libcloudiq_store.a"
  "libcloudiq_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudiq_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
