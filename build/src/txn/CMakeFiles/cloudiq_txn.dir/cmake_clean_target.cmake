file(REMOVE_RECURSE
  "libcloudiq_txn.a"
)
