file(REMOVE_RECURSE
  "CMakeFiles/cloudiq_txn.dir/page_set.cc.o"
  "CMakeFiles/cloudiq_txn.dir/page_set.cc.o.d"
  "CMakeFiles/cloudiq_txn.dir/transaction_manager.cc.o"
  "CMakeFiles/cloudiq_txn.dir/transaction_manager.cc.o.d"
  "CMakeFiles/cloudiq_txn.dir/txn_log.cc.o"
  "CMakeFiles/cloudiq_txn.dir/txn_log.cc.o.d"
  "libcloudiq_txn.a"
  "libcloudiq_txn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudiq_txn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
