
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/txn/page_set.cc" "src/txn/CMakeFiles/cloudiq_txn.dir/page_set.cc.o" "gcc" "src/txn/CMakeFiles/cloudiq_txn.dir/page_set.cc.o.d"
  "/root/repo/src/txn/transaction_manager.cc" "src/txn/CMakeFiles/cloudiq_txn.dir/transaction_manager.cc.o" "gcc" "src/txn/CMakeFiles/cloudiq_txn.dir/transaction_manager.cc.o.d"
  "/root/repo/src/txn/txn_log.cc" "src/txn/CMakeFiles/cloudiq_txn.dir/txn_log.cc.o" "gcc" "src/txn/CMakeFiles/cloudiq_txn.dir/txn_log.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/blockmap/CMakeFiles/cloudiq_blockmap.dir/DependInfo.cmake"
  "/root/repo/build/src/buffer/CMakeFiles/cloudiq_buffer.dir/DependInfo.cmake"
  "/root/repo/build/src/keygen/CMakeFiles/cloudiq_keygen.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/cloudiq_store.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cloudiq_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cloudiq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
