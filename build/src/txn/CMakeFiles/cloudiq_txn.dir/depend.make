# Empty dependencies file for cloudiq_txn.
# This may be replaced when dependencies are built.
