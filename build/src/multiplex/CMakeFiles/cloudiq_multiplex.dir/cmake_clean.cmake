file(REMOVE_RECURSE
  "CMakeFiles/cloudiq_multiplex.dir/multiplex.cc.o"
  "CMakeFiles/cloudiq_multiplex.dir/multiplex.cc.o.d"
  "libcloudiq_multiplex.a"
  "libcloudiq_multiplex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudiq_multiplex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
