# Empty compiler generated dependencies file for cloudiq_multiplex.
# This may be replaced when dependencies are built.
