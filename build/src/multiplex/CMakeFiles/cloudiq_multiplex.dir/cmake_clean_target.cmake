file(REMOVE_RECURSE
  "libcloudiq_multiplex.a"
)
