file(REMOVE_RECURSE
  "CMakeFiles/cloudiq_keygen.dir/object_key_generator.cc.o"
  "CMakeFiles/cloudiq_keygen.dir/object_key_generator.cc.o.d"
  "libcloudiq_keygen.a"
  "libcloudiq_keygen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudiq_keygen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
