# Empty compiler generated dependencies file for cloudiq_keygen.
# This may be replaced when dependencies are built.
