file(REMOVE_RECURSE
  "libcloudiq_keygen.a"
)
