# Empty dependencies file for cloudiq_snapshot.
# This may be replaced when dependencies are built.
