file(REMOVE_RECURSE
  "CMakeFiles/cloudiq_snapshot.dir/snapshot_manager.cc.o"
  "CMakeFiles/cloudiq_snapshot.dir/snapshot_manager.cc.o.d"
  "libcloudiq_snapshot.a"
  "libcloudiq_snapshot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudiq_snapshot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
