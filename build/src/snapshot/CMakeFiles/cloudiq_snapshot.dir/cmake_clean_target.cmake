file(REMOVE_RECURSE
  "libcloudiq_snapshot.a"
)
