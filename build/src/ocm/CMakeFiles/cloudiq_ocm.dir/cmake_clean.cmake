file(REMOVE_RECURSE
  "CMakeFiles/cloudiq_ocm.dir/object_cache_manager.cc.o"
  "CMakeFiles/cloudiq_ocm.dir/object_cache_manager.cc.o.d"
  "libcloudiq_ocm.a"
  "libcloudiq_ocm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudiq_ocm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
