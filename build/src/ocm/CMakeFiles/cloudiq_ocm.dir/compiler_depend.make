# Empty compiler generated dependencies file for cloudiq_ocm.
# This may be replaced when dependencies are built.
