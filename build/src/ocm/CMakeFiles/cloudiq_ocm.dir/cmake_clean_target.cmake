file(REMOVE_RECURSE
  "libcloudiq_ocm.a"
)
