file(REMOVE_RECURSE
  "CMakeFiles/cloudiq_blockmap.dir/blockmap.cc.o"
  "CMakeFiles/cloudiq_blockmap.dir/blockmap.cc.o.d"
  "CMakeFiles/cloudiq_blockmap.dir/identity.cc.o"
  "CMakeFiles/cloudiq_blockmap.dir/identity.cc.o.d"
  "libcloudiq_blockmap.a"
  "libcloudiq_blockmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudiq_blockmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
