# Empty dependencies file for cloudiq_blockmap.
# This may be replaced when dependencies are built.
