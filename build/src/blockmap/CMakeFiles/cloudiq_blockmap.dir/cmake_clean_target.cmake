file(REMOVE_RECURSE
  "libcloudiq_blockmap.a"
)
