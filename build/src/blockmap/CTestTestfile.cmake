# CMake generated Testfile for 
# Source directory: /root/repo/src/blockmap
# Build directory: /root/repo/build/src/blockmap
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
