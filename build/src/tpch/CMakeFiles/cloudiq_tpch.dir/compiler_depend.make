# Empty compiler generated dependencies file for cloudiq_tpch.
# This may be replaced when dependencies are built.
