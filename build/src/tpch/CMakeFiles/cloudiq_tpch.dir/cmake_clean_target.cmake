file(REMOVE_RECURSE
  "libcloudiq_tpch.a"
)
