file(REMOVE_RECURSE
  "CMakeFiles/cloudiq_tpch.dir/queries_a.cc.o"
  "CMakeFiles/cloudiq_tpch.dir/queries_a.cc.o.d"
  "CMakeFiles/cloudiq_tpch.dir/queries_b.cc.o"
  "CMakeFiles/cloudiq_tpch.dir/queries_b.cc.o.d"
  "CMakeFiles/cloudiq_tpch.dir/tpch_gen.cc.o"
  "CMakeFiles/cloudiq_tpch.dir/tpch_gen.cc.o.d"
  "CMakeFiles/cloudiq_tpch.dir/tpch_loader.cc.o"
  "CMakeFiles/cloudiq_tpch.dir/tpch_loader.cc.o.d"
  "libcloudiq_tpch.a"
  "libcloudiq_tpch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudiq_tpch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
