# Empty dependencies file for cloudiq_exec.
# This may be replaced when dependencies are built.
