file(REMOVE_RECURSE
  "libcloudiq_exec.a"
)
