file(REMOVE_RECURSE
  "CMakeFiles/cloudiq_exec.dir/executor.cc.o"
  "CMakeFiles/cloudiq_exec.dir/executor.cc.o.d"
  "libcloudiq_exec.a"
  "libcloudiq_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudiq_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
