# Empty compiler generated dependencies file for cloudiq_common.
# This may be replaced when dependencies are built.
