file(REMOVE_RECURSE
  "libcloudiq_common.a"
)
