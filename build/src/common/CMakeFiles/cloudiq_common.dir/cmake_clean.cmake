file(REMOVE_RECURSE
  "CMakeFiles/cloudiq_common.dir/bitmap.cc.o"
  "CMakeFiles/cloudiq_common.dir/bitmap.cc.o.d"
  "CMakeFiles/cloudiq_common.dir/interval_set.cc.o"
  "CMakeFiles/cloudiq_common.dir/interval_set.cc.o.d"
  "CMakeFiles/cloudiq_common.dir/random.cc.o"
  "CMakeFiles/cloudiq_common.dir/random.cc.o.d"
  "CMakeFiles/cloudiq_common.dir/status.cc.o"
  "CMakeFiles/cloudiq_common.dir/status.cc.o.d"
  "libcloudiq_common.a"
  "libcloudiq_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudiq_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
