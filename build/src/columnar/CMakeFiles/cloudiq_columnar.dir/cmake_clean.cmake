file(REMOVE_RECURSE
  "CMakeFiles/cloudiq_columnar.dir/date_index.cc.o"
  "CMakeFiles/cloudiq_columnar.dir/date_index.cc.o.d"
  "CMakeFiles/cloudiq_columnar.dir/encoding.cc.o"
  "CMakeFiles/cloudiq_columnar.dir/encoding.cc.o.d"
  "CMakeFiles/cloudiq_columnar.dir/hg_index.cc.o"
  "CMakeFiles/cloudiq_columnar.dir/hg_index.cc.o.d"
  "CMakeFiles/cloudiq_columnar.dir/schema.cc.o"
  "CMakeFiles/cloudiq_columnar.dir/schema.cc.o.d"
  "CMakeFiles/cloudiq_columnar.dir/table_loader.cc.o"
  "CMakeFiles/cloudiq_columnar.dir/table_loader.cc.o.d"
  "CMakeFiles/cloudiq_columnar.dir/table_reader.cc.o"
  "CMakeFiles/cloudiq_columnar.dir/table_reader.cc.o.d"
  "CMakeFiles/cloudiq_columnar.dir/text_index.cc.o"
  "CMakeFiles/cloudiq_columnar.dir/text_index.cc.o.d"
  "CMakeFiles/cloudiq_columnar.dir/value.cc.o"
  "CMakeFiles/cloudiq_columnar.dir/value.cc.o.d"
  "libcloudiq_columnar.a"
  "libcloudiq_columnar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudiq_columnar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
