file(REMOVE_RECURSE
  "libcloudiq_columnar.a"
)
