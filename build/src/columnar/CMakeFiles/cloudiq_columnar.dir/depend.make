# Empty dependencies file for cloudiq_columnar.
# This may be replaced when dependencies are built.
