file(REMOVE_RECURSE
  "libcloudiq_engine.a"
)
