# Empty compiler generated dependencies file for cloudiq_engine.
# This may be replaced when dependencies are built.
