file(REMOVE_RECURSE
  "CMakeFiles/cloudiq_engine.dir/consistency_check.cc.o"
  "CMakeFiles/cloudiq_engine.dir/consistency_check.cc.o.d"
  "CMakeFiles/cloudiq_engine.dir/database.cc.o"
  "CMakeFiles/cloudiq_engine.dir/database.cc.o.d"
  "CMakeFiles/cloudiq_engine.dir/metrics.cc.o"
  "CMakeFiles/cloudiq_engine.dir/metrics.cc.o.d"
  "CMakeFiles/cloudiq_engine.dir/snapshot_view.cc.o"
  "CMakeFiles/cloudiq_engine.dir/snapshot_view.cc.o.d"
  "libcloudiq_engine.a"
  "libcloudiq_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudiq_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
