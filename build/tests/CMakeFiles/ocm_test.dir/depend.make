# Empty dependencies file for ocm_test.
# This may be replaced when dependencies are built.
