file(REMOVE_RECURSE
  "CMakeFiles/ocm_test.dir/ocm_test.cc.o"
  "CMakeFiles/ocm_test.dir/ocm_test.cc.o.d"
  "ocm_test"
  "ocm_test.pdb"
  "ocm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
