file(REMOVE_RECURSE
  "CMakeFiles/multiplex_test.dir/multiplex_test.cc.o"
  "CMakeFiles/multiplex_test.dir/multiplex_test.cc.o.d"
  "multiplex_test"
  "multiplex_test.pdb"
  "multiplex_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiplex_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
