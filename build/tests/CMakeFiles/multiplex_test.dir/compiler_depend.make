# Empty compiler generated dependencies file for multiplex_test.
# This may be replaced when dependencies are built.
