
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/features_test.cc" "tests/CMakeFiles/features_test.dir/features_test.cc.o" "gcc" "tests/CMakeFiles/features_test.dir/features_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cloudiq_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cloudiq_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/cloudiq_store.dir/DependInfo.cmake"
  "/root/repo/build/src/keygen/CMakeFiles/cloudiq_keygen.dir/DependInfo.cmake"
  "/root/repo/build/src/blockmap/CMakeFiles/cloudiq_blockmap.dir/DependInfo.cmake"
  "/root/repo/build/src/buffer/CMakeFiles/cloudiq_buffer.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/cloudiq_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/ocm/CMakeFiles/cloudiq_ocm.dir/DependInfo.cmake"
  "/root/repo/build/src/snapshot/CMakeFiles/cloudiq_snapshot.dir/DependInfo.cmake"
  "/root/repo/build/src/columnar/CMakeFiles/cloudiq_columnar.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/cloudiq_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/cloudiq_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/tpch/CMakeFiles/cloudiq_tpch.dir/DependInfo.cmake"
  "/root/repo/build/src/multiplex/CMakeFiles/cloudiq_multiplex.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
