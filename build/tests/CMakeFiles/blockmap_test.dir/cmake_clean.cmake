file(REMOVE_RECURSE
  "CMakeFiles/blockmap_test.dir/blockmap_test.cc.o"
  "CMakeFiles/blockmap_test.dir/blockmap_test.cc.o.d"
  "blockmap_test"
  "blockmap_test.pdb"
  "blockmap_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blockmap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
