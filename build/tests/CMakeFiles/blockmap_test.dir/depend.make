# Empty dependencies file for blockmap_test.
# This may be replaced when dependencies are built.
