# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/store_test[1]_include.cmake")
include("/root/repo/build/tests/keygen_test[1]_include.cmake")
include("/root/repo/build/tests/blockmap_test[1]_include.cmake")
include("/root/repo/build/tests/buffer_test[1]_include.cmake")
include("/root/repo/build/tests/ocm_test[1]_include.cmake")
include("/root/repo/build/tests/txn_test[1]_include.cmake")
include("/root/repo/build/tests/snapshot_test[1]_include.cmake")
include("/root/repo/build/tests/columnar_test[1]_include.cmake")
include("/root/repo/build/tests/exec_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/tpch_test[1]_include.cmake")
include("/root/repo/build/tests/multiplex_test[1]_include.cmake")
include("/root/repo/build/tests/features_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/failure_test[1]_include.cmake")
