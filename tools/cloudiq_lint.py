#!/usr/bin/env python3
"""cloudiq-lint: project-specific determinism and storage-policy checks.

CloudIQ's experiment harness promises byte-identical --report JSON for a
fixed seed (EXPERIMENTS.md) and never-write-twice object storage (§3).
Those are source-level disciplines, so they are checked at the source
level. Rules:

  cloudiq-wall-clock      No wall-clock or entropy source (system_clock,
                          steady_clock, time(), rand(), srand(),
                          std::random_device) outside src/common/random.*
                          and the sim/ layer. Everything else must take
                          time from SimClock and randomness from the
                          seeded engine RNG.
  cloudiq-unordered-iter  No iteration over std::unordered_map/set in
                          serialization / report / trace-emit code (file
                          name matches report|serial|trace|export|json|
                          explain). Hash-order iteration depends on
                          pointer values and libc++ vs libstdc++, which
                          breaks byte-identical reports.
  cloudiq-raw-new         No raw `new` / `delete` in engine code (src/).
                          Ownership goes through unique_ptr/make_unique;
                          `= delete` declarations are of course fine.
  cloudiq-direct-put      No direct SimObjectStore::Put outside the
                          store's own layer (src/sim/), its unit test,
                          and the sanctioned ObjectStoreIo wrapper that
                          derives keys from the ObjectKeyGenerator.
                          Ad-hoc Puts can collide with keygen-issued
                          keys and silently violate never-write-twice.
  cloudiq-ndp-layering    src/ndp/ (the server-side pushdown evaluator)
                          must not include ocm/, buffer/ or txn/
                          headers. The NDP engine models code running
                          *inside the object store*: it sees encoded
                          pages and nothing of the compute node's
                          caches or transactions. An include from those
                          layers would let server code depend on client
                          state that a real storage service cannot see.
  cloudiq-stall-report    Every wait/sleep/backoff site in src/ must
                          report through the StallProfiler: a condition
                          wait (.Wait/.wait/wait_for/...), a sleep, or a
                          backoff application (`+ backoff`, `backoff *=`)
                          needs a profiler Charge / ScopedStall /
                          ScopedBackgroundStall within a few lines, or
                          that sim-time silently escapes the wait-state
                          ledger and the per-query conservation
                          invariant ("every sim-microsecond attributed")
                          rots. src/common/mutex.h (the primitives
                          themselves) and src/telemetry/ (the profiler)
                          are exempt; real-thread handoffs that consume
                          no sim-time justify a NOLINT instead.
  cloudiq-costopt-evidence
                          Every cost decision site in src/ — a call to
                          costopt::ChoosePlan or
                          AdmissionController::DecidePredictive — must
                          leave an auditable trail nearby: a WhatIfScan /
                          WhatIfLog record, a SpendPredictor prediction
                          (predicted_usd), or an Observe() feeding the
                          predictor, within a few lines. A decision with
                          no recorded prediction silently escapes the
                          predicted-vs-billed accounting that EXPLAIN
                          WHATIF and costopt.prediction_error promise.
                          src/costopt/ itself (the mechanism) is exempt.

Escape hatch: `// NOLINT(cloudiq-<rule>): <justification>` on the
offending line (or the line above) suppresses that rule there. The
justification after the colon is mandatory; a bare NOLINT is itself a
violation (cloudiq-nolint-justification).

Usage: cloudiq_lint.py [--root DIR] [paths...]   (default paths:
src bench tests examples). Exits 1 if any violation is found.

Structure: every rule is a row in the RULES registry — (name, a
path-applicability predicate, a checker over a FileContext). Sibling
tools reuse the shared pieces rather than duplicating them:
FileContext, strip_comments_and_strings, parse_nolint_directives (the
NOLINT escape-hatch grammar), Violation, collect_files and the
run_checker() driver are the walker/suppression harness that
cloudiq_locks.py (the lock-graph analyzer) builds on.
"""

import argparse
import os
import re
import sys

DEFAULT_PATHS = ["src", "bench", "tests", "examples"]
SOURCE_EXTENSIONS = (".h", ".cc")

NOLINT_RE = re.compile(r"//\s*NOLINT\(cloudiq-([a-z0-9-]+)\)(.*)")

WALLCLOCK_PATTERNS = [
    (re.compile(r"\bsystem_clock\b"), "std::chrono::system_clock"),
    (re.compile(r"\bsteady_clock\b"), "std::chrono::steady_clock"),
    (re.compile(r"\brandom_device\b"), "std::random_device"),
    (re.compile(r"\btime\s*\("), "time()"),
    (re.compile(r"\brand\s*\("), "rand()"),
    (re.compile(r"\bsrand\s*\("), "srand()"),
]

RAW_NEW_RE = re.compile(r"(?<![\w.])new\s+[\w:<(]")
RAW_DELETE_RE = re.compile(r"(?<![\w.])delete\s*(\[\s*\])?\s+[\w(*]")

EMIT_FILE_RE = re.compile(r"report|serial|trace|export|json|explain", re.I)

UNORDERED_OPEN_RE = re.compile(r"\bunordered_(?:map|set)\s*<")

STORE_DECL_RE = re.compile(r"\bSimObjectStore\b\s*[*&]?\s*(\w+)")

NDP_FORBIDDEN_INCLUDE_RE = re.compile(
    r'#\s*include\s*"((?:ocm|buffer|txn)/[^"]*)"')

# Wait/sleep/backoff sites that must report through the stall profiler.
STALL_WAIT_RE = re.compile(
    r"\.\s*[Ww]ait(?:_for|_until|For|Until)?\s*\(|"
    r"\bsleep_(?:for|until)\s*\(|\busleep\s*\(|\bnanosleep\s*\(")
STALL_BACKOFF_RE = re.compile(r"\+\s*backoff\b|\bbackoff\s*\*=")
# Evidence the elapsed time is being attributed, looked for within
# STALL_REPORT_WINDOW lines of the site.
STALL_REPORT_RE = re.compile(
    r"profiler|Charge\s*\(|ScopedStall|ScopedBackgroundStall")
STALL_REPORT_WINDOW = 5

# Cost decision sites (calls only — the `.`/`->`/`::` prefix keeps the
# declarations and definitions in admission.h / chooser.h out of scope).
COSTOPT_DECISION_RE = re.compile(
    r"(\.|->|::)\s*(ChoosePlan|DecidePredictive)\s*\(")
# Evidence the decision was recorded, looked for within
# COSTOPT_EVIDENCE_WINDOW lines. Deliberately excludes the bare tokens
# `costopt` and `Predict`, which appear in the decision calls themselves
# and would make the rule vacuously satisfied.
COSTOPT_EVIDENCE_RE = re.compile(
    r"WhatIfScan|WhatIfLog|whatif\s*\(|\.Observe\s*\(|predicted_usd|"
    r"SpendPredictor|predictor|PredictionStats")
COSTOPT_EVIDENCE_WINDOW = 10


class Violation:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line  # 1-based
        self.rule = rule
        self.message = message

    def __repr__(self):
        return f"{self.path}:{self.line}: [cloudiq-{self.rule}] {self.message}"


def strip_comments_and_strings(text, keep_strings=False):
    """Returns `text` with comment and string/char literal contents
    blanked (newlines preserved), so rule regexes never fire on prose.
    With `keep_strings`, literals survive (for rules like ndp-layering
    that inspect #include paths, which live inside string tokens)."""
    out = []
    i, n = 0, len(text)
    state = "code"
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
            elif c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
            elif c == '"':
                state = "string"
                out.append('"' if keep_strings else " ")
                i += 1
            elif c == "'":
                state = "char"
                out.append("'" if keep_strings else " ")
                i += 1
            else:
                out.append(c)
                i += 1
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
            else:
                out.append(c if c == "\n" else " ")
                i += 1
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append(text[i:i + 2] if keep_strings else "  ")
                i += 2
            elif c == quote:
                state = "code"
                out.append(quote if keep_strings else " ")
                i += 1
            else:
                if keep_strings:
                    out.append(c)
                else:
                    out.append(c if c == "\n" else " ")
                i += 1
    return "".join(out)


def norm(path):
    return path.replace(os.sep, "/")


def wallclock_exempt(path):
    p = norm(path)
    base = os.path.basename(p)
    if base.startswith("random.") and "/common/" in p:
        return True
    return "/sim/" in p or p.startswith("sim/")


def raw_new_applies(path):
    p = norm(path)
    return p.startswith("src/") or "/src/" in p


def emit_file(path):
    return bool(EMIT_FILE_RE.search(os.path.basename(path)))


def direct_put_exempt(path):
    p = norm(path)
    if "/sim/" in p or p.startswith("sim/"):
        return True
    if os.path.basename(p).startswith("object_store_io."):
        return True  # the sanctioned keygen-keyed wrapper
    if os.path.basename(p) == "sim_test.cc":
        return True  # the store's own unit test
    return False


def ndp_layer_file(path):
    p = norm(path)
    return p.startswith("src/ndp/") or "/src/ndp/" in p


def stall_report_applies(path):
    p = norm(path)
    if not (p.startswith("src/") or "/src/" in p):
        return False
    # The synchronization primitives themselves and the profiler are the
    # mechanism, not reporting sites.
    if os.path.basename(p).startswith("mutex."):
        return False
    return "/telemetry/" not in p


def costopt_evidence_applies(path):
    p = norm(path)
    if not (p.startswith("src/") or "/src/" in p):
        return False
    return not (p.startswith("src/costopt/") or "/src/costopt/" in p)


def unordered_names(stripped_text):
    """Names (variables or functions) declared with an unordered_map/set
    type: `unordered_map<...> name`. Angle brackets are balanced so
    nested template arguments don't truncate the match."""
    names = set()
    for m in UNORDERED_OPEN_RE.finditer(stripped_text):
        depth = 1
        i = m.end()
        n = len(stripped_text)
        while i < n and depth > 0:
            if stripped_text[i] == "<":
                depth += 1
            elif stripped_text[i] == ">":
                depth -= 1
            i += 1
        if depth != 0:
            continue
        rest = stripped_text[i:]
        name_match = re.match(r"\s*&?\s*(\w+)", rest)
        if name_match:
            names.add(name_match.group(1))
    return names


def sibling_path(path):
    root, ext = os.path.splitext(path)
    if ext == ".cc":
        return root + ".h"
    if ext == ".h":
        return root + ".cc"
    return None


def store_var_names(stripped_text):
    names = set()
    for m in STORE_DECL_RE.finditer(stripped_text):
        names.add(m.group(1))
    return names


def read_file(path):
    with open(path, "r", encoding="utf-8", errors="replace") as f:
        return f.read()


class FileContext:
    """One file's text in every stripped form a checker needs, computed
    once and shared across rules (and across sibling tools)."""

    def __init__(self, path, text):
        self.path = path
        self.text = text
        self.original_lines = text.split("\n")
        self.stripped_text = strip_comments_and_strings(text)
        self.stripped_lines = self.stripped_text.split("\n")
        self._include_lines = None

    @property
    def include_lines(self):
        """Comment-stripped lines with string literals kept — for rules
        that inspect #include paths (which live inside string tokens)."""
        if self._include_lines is None:
            self._include_lines = strip_comments_and_strings(
                self.text, keep_strings=True).split("\n")
        return self._include_lines


def parse_nolint_directives(path, original_lines, stripped_lines):
    """Parses `// NOLINT(cloudiq-<rule>): <why>` escape hatches.

    Returns (suppressed, violations): suppressed maps rule name -> set of
    0-based line indexes the directive covers — its own line, the rest of
    its (possibly multi-line) comment, and the whole next statement
    (scanning forward to the first stripped line that closes one with
    `;`/`{`/`}` within a small window). A directive without the mandatory
    justification buys nothing and is itself reported.
    """
    suppressed = {}
    violations = []
    for idx, line in enumerate(original_lines):
        m = NOLINT_RE.search(line)
        if not m:
            continue
        rule, tail = m.group(1), m.group(2)
        if not re.match(r"^\s*:\s*\S", tail):
            violations.append(Violation(
                path, idx + 1, "nolint-justification",
                f"NOLINT(cloudiq-{rule}) needs a justification: "
                "write `// NOLINT(cloudiq-" + rule + "): <why>`"))
            continue
        covered = {idx}
        j = idx + 1
        while j < len(original_lines) and j <= idx + 8:
            covered.add(j)
            stripped = stripped_lines[j].strip()
            if stripped and re.search(r"[;{}]\s*$", stripped):
                break
            j += 1
        suppressed.setdefault(rule, set()).update(covered)
    return suppressed, violations


def run_checker(path, text, check):
    """Shared driver: builds the FileContext and NOLINT suppression map,
    runs `check(ctx, report)`, returns the Violations. `report(idx, rule,
    message)` drops anything a justified NOLINT covers."""
    ctx = FileContext(path, text if text is not None else read_file(path))
    suppressed, violations = parse_nolint_directives(
        path, ctx.original_lines, ctx.stripped_lines)

    def report(idx, rule, message):
        if idx in suppressed.get(rule, ()):
            return
        violations.append(Violation(path, idx + 1, rule, message))

    check(ctx, report)
    return violations


# --- per-rule checkers (each over a FileContext) ---------------------------

def check_wall_clock(ctx, report):
    for idx, line in enumerate(ctx.stripped_lines):
        for pattern, what in WALLCLOCK_PATTERNS:
            if pattern.search(line):
                report(idx, "wall-clock",
                       f"{what} breaks deterministic replay; use "
                       "SimClock / the seeded engine RNG "
                       "(src/common/random.h)")


def check_raw_new(ctx, report):
    for idx, line in enumerate(ctx.stripped_lines):
        if RAW_NEW_RE.search(line):
            report(idx, "raw-new",
                   "raw `new` in engine code; use std::make_unique "
                   "or a container")
        if RAW_DELETE_RE.search(line):
            report(idx, "raw-new",
                   "raw `delete` in engine code; ownership belongs "
                   "in unique_ptr")


def check_unordered_iter(ctx, report):
    names = unordered_names(ctx.stripped_text)
    sib = sibling_path(ctx.path)
    if sib and os.path.exists(sib):
        names |= unordered_names(
            strip_comments_and_strings(read_file(sib)))
    for name in sorted(names):
        for_re = re.compile(
            r"for\s*\([^;)]*:\s*[^)]*\b" + re.escape(name) + r"\b")
        begin_re = re.compile(
            r"\b" + re.escape(name) +
            r"\s*(\(\s*\))?\s*\.\s*c?begin\s*\(")
        for idx, line in enumerate(ctx.stripped_lines):
            if for_re.search(line) or begin_re.search(line):
                report(idx, "unordered-iter",
                       f"iterating unordered container `{name}` in "
                       "emit code; hash order is nondeterministic — "
                       "copy into a std::map/sorted vector first")


def check_ndp_layering(ctx, report):
    for idx, line in enumerate(ctx.include_lines):
        m = NDP_FORBIDDEN_INCLUDE_RE.search(line)
        if m:
            report(idx, "ndp-layering",
                   f'src/ndp/ must not include "{m.group(1)}": the '
                   "NDP engine runs inside the object store and "
                   "cannot see the compute node's OCM, buffer pool "
                   "or transactions")


def check_stall_report(ctx, report):
    for idx, line in enumerate(ctx.stripped_lines):
        if not (STALL_WAIT_RE.search(line) or
                STALL_BACKOFF_RE.search(line)):
            continue
        lo = max(0, idx - STALL_REPORT_WINDOW)
        hi = min(len(ctx.stripped_lines), idx + STALL_REPORT_WINDOW + 1)
        nearby = "\n".join(ctx.stripped_lines[lo:hi])
        if STALL_REPORT_RE.search(nearby):
            continue
        report(idx, "stall-report",
               "wait/sleep/backoff site without a stall-profiler "
               "charge nearby; attribute the elapsed sim-time "
               "(Charge / ScopedStall / ScopedBackgroundStall) or "
               "justify with NOLINT if no sim-time passes here")


def check_costopt_evidence(ctx, report):
    for idx, line in enumerate(ctx.stripped_lines):
        if not COSTOPT_DECISION_RE.search(line):
            continue
        lo = max(0, idx - COSTOPT_EVIDENCE_WINDOW)
        hi = min(len(ctx.stripped_lines), idx + COSTOPT_EVIDENCE_WINDOW + 1)
        nearby = "\n".join(ctx.stripped_lines[lo:hi])
        if COSTOPT_EVIDENCE_RE.search(nearby):
            continue
        report(idx, "costopt-evidence",
               "cost decision (ChoosePlan / DecidePredictive) with no "
               "recorded trail nearby; capture it in a WhatIfScan / "
               "WhatIfLog or feed the SpendPredictor (predicted_usd / "
               "Observe) so predicted-vs-billed accounting sees it")


def check_direct_put(ctx, report):
    names = store_var_names(ctx.stripped_text)
    sib = sibling_path(ctx.path)
    if sib and os.path.exists(sib):
        names |= store_var_names(
            strip_comments_and_strings(read_file(sib)))
    put_res = [re.compile(r"\bobject_store\s*\(\s*\)\s*\.\s*Put\s*\(")]
    for name in sorted(names):
        put_res.append(re.compile(
            r"\b" + re.escape(name) + r"\s*(\.|->)\s*Put\s*\("))
    for idx, line in enumerate(ctx.stripped_lines):
        for put_re in put_res:
            if put_re.search(line):
                report(idx, "direct-put",
                       "direct SimObjectStore::Put bypasses the "
                       "ObjectKeyGenerator path; go through "
                       "ObjectStoreIo (or justify with NOLINT)")
                break


class Rule:
    """One registry row: the rule's name, its file-applicability
    predicate, and its checker over a FileContext."""

    def __init__(self, name, applies, check):
        self.name = name
        self.applies = applies
        self.check = check


# The rule registry. To add a rule: write a checker + predicate, add the
# row here, a row to the DESIGN.md §5e table, and fixtures to the test.
RULES = [
    Rule("wall-clock", lambda p: not wallclock_exempt(p), check_wall_clock),
    Rule("raw-new", raw_new_applies, check_raw_new),
    Rule("unordered-iter", emit_file, check_unordered_iter),
    Rule("ndp-layering", ndp_layer_file, check_ndp_layering),
    Rule("stall-report", stall_report_applies, check_stall_report),
    Rule("costopt-evidence", costopt_evidence_applies,
         check_costopt_evidence),
    Rule("direct-put", lambda p: not direct_put_exempt(p),
         check_direct_put),
]


def lint_file(path, text=None, rules=None):
    """Lints one file against the registry; returns a list of
    Violations."""
    active = [r for r in (rules if rules is not None else RULES)
              if r.applies(path)]

    def check_all(ctx, report):
        for rule in active:
            rule.check(ctx, report)

    return run_checker(path, text, check_all)


def collect_files(paths, root):
    files = []
    for p in paths:
        full = os.path.join(root, p) if root else p
        if os.path.isfile(full):
            files.append(full)
        elif os.path.isdir(full):
            for dirpath, _dirnames, filenames in os.walk(full):
                for name in sorted(filenames):
                    if name.endswith(SOURCE_EXTENSIONS):
                        files.append(os.path.join(dirpath, name))
    return sorted(set(files))


def lint_paths(paths, root=""):
    violations = []
    for path in collect_files(paths, root):
        violations.extend(lint_file(path))
    return violations


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="CloudIQ determinism & storage-policy linter")
    parser.add_argument("paths", nargs="*", default=None,
                        help="files or directories (default: %s)"
                             % " ".join(DEFAULT_PATHS))
    parser.add_argument("--root", default="",
                        help="prefix for all paths (repo root)")
    args = parser.parse_args(argv)
    paths = args.paths or DEFAULT_PATHS

    violations = lint_paths(paths, args.root)
    for v in violations:
        print(v)
    if violations:
        print(f"cloudiq-lint: {len(violations)} violation(s)",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
