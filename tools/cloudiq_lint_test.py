#!/usr/bin/env python3
"""Unit tests for cloudiq_lint.py: every rule's positive and negative
fixtures plus the NOLINT escape hatch, run against real files in a temp
tree (the rules are path-sensitive)."""

import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import cloudiq_lint  # noqa: E402


class LintFixtureTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()

    def tearDown(self):
        self.tmp.cleanup()

    def write(self, rel_path, content):
        path = os.path.join(self.tmp.name, rel_path)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as f:
            f.write(content)
        return path

    def lint(self, rel_path, content):
        return cloudiq_lint.lint_file(self.write(rel_path, content))

    def rules(self, violations):
        return sorted(v.rule for v in violations)

    # --- cloudiq-wall-clock -------------------------------------------------

    def test_wall_clock_flags_every_source(self):
        code = (
            "#include <chrono>\n"
            "auto a = std::chrono::system_clock::now();\n"
            "auto b = std::chrono::steady_clock::now();\n"
            "std::random_device rd;\n"
            "long c = time(nullptr);\n"
            "int d = rand();\n"
            "void f() { srand(42); }\n"
        )
        violations = self.lint("src/engine/clocky.cc", code)
        self.assertEqual(self.rules(violations), ["wall-clock"] * 6)

    def test_wall_clock_allows_sim_and_random(self):
        code = "auto a = std::chrono::steady_clock::now();\n"
        self.assertEqual(self.lint("src/sim/sim_clock.cc", code), [])
        self.assertEqual(self.lint("src/common/random.cc", code), [])

    def test_wall_clock_ignores_comments_strings_and_substrings(self):
        code = (
            "// uses system_clock for nothing\n"
            "const char* s = \"steady_clock\";\n"
            "double fetch_time(int x);\n"   # _time( is not time(
            "SimTime t = SimTime(3);\n"
        )
        self.assertEqual(self.lint("src/engine/clean.cc", code), [])

    # --- cloudiq-raw-new ----------------------------------------------------

    def test_raw_new_and_delete_flagged_in_src(self):
        code = (
            "void f() {\n"
            "  int* p = new int(3);\n"
            "  delete p;\n"
            "}\n"
        )
        violations = self.lint("src/engine/owner.cc", code)
        self.assertEqual(self.rules(violations), ["raw-new", "raw-new"])

    def test_deleted_functions_and_tests_are_fine(self):
        code = "Foo(const Foo&) = delete;\nFoo& operator=(Foo&&) = delete;\n"
        self.assertEqual(self.lint("src/engine/rule5.h", code), [])
        raw = "void f() { int* p = new int; delete p; }\n"
        # Rule scope is engine code: tests/bench are out of scope.
        self.assertEqual(self.lint("tests/foo_test.cc", raw), [])

    def test_new_in_identifier_not_flagged(self):
        code = "int new_string = 3; int renew = new_string;\n"
        self.assertEqual(self.lint("src/engine/names.cc", code), [])

    # --- cloudiq-unordered-iter ---------------------------------------------

    def test_unordered_iteration_flagged_in_emit_files(self):
        code = (
            "#include <unordered_map>\n"
            "std::unordered_map<uint64_t, std::vector<uint8_t>> runs_;\n"
            "void Emit() {\n"
            "  for (const auto& [k, v] : runs_) { Write(k); }\n"
            "}\n"
        )
        violations = self.lint("src/telemetry/report.cc", code)
        self.assertEqual(self.rules(violations), ["unordered-iter"])

    def test_unordered_begin_flagged_in_emit_files(self):
        code = (
            "std::unordered_set<int> keys_;\n"
            "auto it = keys_.begin();\n"
        )
        violations = self.lint("src/exec/explain.cc", code)
        self.assertEqual(self.rules(violations), ["unordered-iter"])

    def test_unordered_iteration_ok_outside_emit_files(self):
        code = (
            "std::unordered_map<int, int> build_;\n"
            "void f() { for (auto& [k, v] : build_) { v++; } }\n"
        )
        self.assertEqual(self.lint("src/exec/executor.cc", code), [])

    def test_ordered_map_ok_in_emit_files(self):
        code = (
            "std::map<int, int> rows_;\n"
            "void Emit() { for (auto& [k, v] : rows_) { Write(k); } }\n"
        )
        self.assertEqual(self.lint("src/telemetry/report.cc", code), [])

    def test_unordered_decl_in_sibling_header_is_seen(self):
        self.write("src/telemetry/trace_sink.h",
                   "std::unordered_map<int, int> events_;\n")
        code = "void Emit() { for (auto& [k, v] : events_) {} }\n"
        violations = self.lint("src/telemetry/trace_sink.cc", code)
        self.assertEqual(self.rules(violations), ["unordered-iter"])

    # --- cloudiq-direct-put -------------------------------------------------

    def test_direct_put_flagged(self):
        code = (
            "SimObjectStore* store_;\n"
            "void f() { (void)store_->Put(\"k\", {}, 0.0, &done); }\n"
        )
        violations = self.lint("src/engine/writer.cc", code)
        self.assertEqual(self.rules(violations), ["direct-put"])

    def test_env_object_store_put_flagged(self):
        code = "void f() { (void)env.object_store().Put(k, b, 0.0, &d); }\n"
        violations = self.lint("bench/bench_thing.cc", code)
        self.assertEqual(self.rules(violations), ["direct-put"])

    def test_sanctioned_paths_exempt(self):
        code = (
            "SimObjectStore* store_;\n"
            "void f() { (void)store_->Put(\"k\", {}, 0.0, &done); }\n"
        )
        self.assertEqual(self.lint("src/sim/object_store.cc", code), [])
        self.assertEqual(self.lint("src/store/object_store_io.cc", code), [])
        self.assertEqual(self.lint("tests/sim_test.cc", code), [])

    def test_other_put_methods_not_flagged(self):
        code = (
            "SystemStore* system_;\n"
            "IdentityCatalog catalog_;\n"
            "void f() { (void)system_->Put(\"n\", {}, 0.0, &d);\n"
            "           catalog_.Put(obj); }\n"
        )
        self.assertEqual(self.lint("src/engine/meta.cc", code), [])

    # --- cloudiq-ndp-layering -----------------------------------------------

    def test_ndp_forbidden_includes_flagged(self):
        code = (
            '#include "ocm/object_cache_manager.h"\n'
            '#include "buffer/buffer_manager.h"\n'
            '#include "txn/transaction_manager.h"\n'
        )
        violations = self.lint("src/ndp/ndp_engine.cc", code)
        self.assertEqual(self.rules(violations), ["ndp-layering"] * 3)

    def test_ndp_allowed_includes_ok(self):
        code = (
            '#include "columnar/encoding.h"\n'
            '#include "common/result.h"\n'
            '#include "ndp/ndp_protocol.h"\n'
            '#include "sim/object_store.h"\n'
            '#include "store/page_codec.h"\n'
        )
        self.assertEqual(self.lint("src/ndp/ndp_engine.h", code), [])

    def test_ndp_rule_scoped_to_ndp_dir(self):
        # Consumer-side code may of course see the buffer pool and txns.
        code = '#include "txn/transaction_manager.h"\n'
        self.assertEqual(self.lint("src/exec/executor.cc", code), [])

    def test_ndp_mention_in_comment_not_flagged(self):
        code = (
            "// Never #include \"ocm/object_cache_manager.h\" here: the\n"
            "// engine runs inside the store.\n"
            "int x = 0;\n"
        )
        self.assertEqual(self.lint("src/ndp/notes.h", code), [])

    # --- cloudiq-stall-report -----------------------------------------------

    def test_unreported_wait_and_backoff_flagged(self):
        code = (
            "void f() {\n"
            "  cv_.Wait(&mu_, [this] { return done_; });\n"
            "}\n"
            "void g(double backoff, double t) {\n"
            "  t = t + backoff;\n"
            "  backoff *= 2;\n"
            "}\n"
        )
        violations = self.lint("src/engine/waiter.cc", code)
        self.assertEqual(self.rules(violations), ["stall-report"] * 3)

    def test_wait_with_nearby_charge_ok(self):
        code = (
            "void f(double t, double backoff) {\n"
            "  t = t + backoff;\n"
            "  profiler_->Charge(WaitClass::kThrottleBackoff, was, t);\n"
            "  backoff *= 2;\n"
            "}\n"
        )
        self.assertEqual(self.lint("src/store/retry.cc", code), [])

    def test_scoped_stall_counts_as_reporting(self):
        code = (
            "void f() {\n"
            "  ScopedStall stall(&profiler, &clock, WaitClass::kBufferFill);\n"
            "  cv_.Wait(&mu_, [this] { return filled_; });\n"
            "}\n"
        )
        self.assertEqual(self.lint("src/buffer/fill.cc", code), [])

    def test_stall_rule_exempts_primitives_and_profiler(self):
        code = "void f() { cv_.wait(lock, pred); }\n"
        self.assertEqual(self.lint("src/common/mutex.h", code), [])
        self.assertEqual(
            self.lint("src/telemetry/stall_profiler.cc", code), [])
        # Out of scope entirely: tests and bench harnesses.
        self.assertEqual(self.lint("tests/fiber_test.cc", code), [])

    def test_stall_rule_nolint_with_justification(self):
        code = (
            "// NOLINT(cloudiq-stall-report): real-thread handoff, no\n"
            "// sim-time passes while parked here.\n"
            "cv_.Wait(&mu_, [this] { return turn_; });\n"
        )
        self.assertEqual(self.lint("src/workload/fiber.cc", code), [])

    # --- cloudiq-costopt-evidence ---------------------------------------------

    def test_costopt_decision_without_trail_flagged(self):
        code = (
            "void Plan() {\n"
            "  costopt::PlanChoice c =\n"
            "      costopt::ChoosePlan(cands, policy, slo, budget);\n"
            "  use_push = c.index == 1;\n"
            "}\n"
        )
        violations = self.lint("src/exec/planner.cc", code)
        self.assertEqual(self.rules(violations), ["costopt-evidence"])

    def test_predictive_decision_without_trail_flagged(self):
        # `DecidePredictive` contains `Predict`, but the call itself must
        # not count as its own evidence.
        code = (
            "void Admit() {\n"
            "  auto d = admission_.DecidePredictive(t, now, spent, est,\n"
            "                                       inflight, budget, ok);\n"
            "  Apply(d);\n"
            "}\n"
        )
        violations = self.lint("src/workload/gate.cc", code)
        self.assertEqual(self.rules(violations), ["costopt-evidence"])

    def test_costopt_decision_with_whatif_record_ok(self):
        code = (
            "void Plan() {\n"
            "  costopt::PlanChoice c =\n"
            "      costopt::ChoosePlan(cands, policy, slo, budget);\n"
            "  costopt::WhatIfScan record;\n"
            "  record.chosen = c.index;\n"
            "}\n"
        )
        self.assertEqual(self.lint("src/exec/planner.cc", code), [])

    def test_predictive_decision_with_predictor_ok(self):
        code = (
            "void Admit() {\n"
            "  job->predicted_usd = predictor_.Predict(job->tenant, tag);\n"
            "  auto d = admission_.DecidePredictive(t, now, spent,\n"
            "                                       job->predicted_usd,\n"
            "                                       inflight, budget, ok);\n"
            "}\n"
        )
        self.assertEqual(self.lint("src/workload/gate.cc", code), [])

    def test_costopt_rule_exempts_mechanism_and_tests(self):
        code = (
            "PlanChoice Retry() {\n"
            "  return costopt::ChoosePlan(cands, policy, slo, budget);\n"
            "}\n"
        )
        # The subsystem itself and out-of-src harnesses are not decision
        # sites that owe a trail.
        self.assertEqual(self.lint("src/costopt/chooser.cc", code), [])
        self.assertEqual(self.lint("tests/costopt_test.cc", code), [])
        self.assertEqual(self.lint("bench/bench_costopt.cc", code), [])

    def test_costopt_declarations_not_flagged(self):
        code = (
            "class AdmissionController {\n"
            " public:\n"
            "  Decision DecidePredictive(const std::string& tenant,\n"
            "                            SimTime now, double spent);\n"
            "};\n"
        )
        self.assertEqual(self.lint("src/workload/admission.h", code), [])

    # --- NOLINT escape hatch ------------------------------------------------

    def test_nolint_with_justification_suppresses(self):
        code = (
            "void f() {\n"
            "  // NOLINT(cloudiq-raw-new): arena handoff, freed by pool.\n"
            "  int* p = new int(3);\n"
            "}\n"
        )
        self.assertEqual(self.lint("src/engine/escape.cc", code), [])

    def test_nolint_covers_multiline_statement(self):
        code = (
            "SimObjectStore* store_;\n"
            "// NOLINT(cloudiq-direct-put): reserved metadata prefix,\n"
            "// disjoint from keygen keys.\n"
            "Status st = store_->Put(kKey, std::move(bytes),\n"
            "                        now, &done);\n"
        )
        self.assertEqual(self.lint("src/engine/meta2.cc", code), [])

    def test_nolint_without_justification_is_a_violation(self):
        code = (
            "void f() {\n"
            "  int* p = new int(3);  // NOLINT(cloudiq-raw-new)\n"
            "}\n"
        )
        violations = self.lint("src/engine/lazy.cc", code)
        # The invalid suppression is reported AND the underlying rule
        # still fires — a bare NOLINT buys nothing.
        self.assertEqual(self.rules(violations),
                         ["nolint-justification", "raw-new"])

    def test_nolint_only_suppresses_named_rule(self):
        code = (
            "// NOLINT(cloudiq-raw-new): wrong rule name on purpose.\n"
            "int x = rand();\n"
        )
        violations = self.lint("src/engine/mismatch.cc", code)
        self.assertEqual(self.rules(violations), ["wall-clock"])

    # --- driver -------------------------------------------------------------

    def test_lint_paths_walks_directories_and_exit_codes(self):
        self.write("src/engine/a.cc", "int x = rand();\n")
        self.write("src/engine/b.cc", "int y = 0;\n")
        violations = cloudiq_lint.lint_paths(["src"], root=self.tmp.name)
        self.assertEqual(self.rules(violations), ["wall-clock"])
        self.assertEqual(
            cloudiq_lint.main(["--root", self.tmp.name, "src"]), 1)
        self.write("src/engine/a.cc", "int x = 0;\n")
        self.assertEqual(
            cloudiq_lint.main(["--root", self.tmp.name, "src"]), 0)


if __name__ == "__main__":
    unittest.main()
