#!/usr/bin/env python3
"""stall_top: render the wait-state stall profile from a --report JSON.

Reads the `stalls` section the StallProfiler emits (integer nanoseconds,
conservation-exact: per entry the classes sum to total_nanos, and across
all entries the totals sum to window_nanos + background_nanos) and prints
a `top`-style view:

  * per-class totals for the whole run, sorted by time;
  * the top queries ranked by wait time (everything but cpu_exec), with
    each query's two heaviest wait classes;
  * optionally (--operators) the per-operator rows of one query.

Usage:
  tools/stall_top.py REPORT.json [--limit N] [--operators QUERY_ID]
  tools/stall_top.py REPORT.json --locks   # join stalls vs the LOCKS.md ranks
  tools/stall_top.py --check REPORT.json   # verify conservation, exit 1 on drift

--check recomputes the invariant from the JSON alone and is what
scripts/check.sh's `profile` pass runs against the bench reports.

--locks joins the profile against the lock-rank manifest (LOCKS.md, the
same file tools/cloudiq_locks.py enforces): each registered lock that
declares stall classes is charged the run-wide nanoseconds of those
classes, and the queries with the most `lock_wait` time are listed so a
contended rank can be chased to the queries paying for it.
"""

import argparse
import json
import os
import sys

WAIT_CLASSES = [
    "cpu_exec",
    "lock_wait",
    "admission_queue",
    "buffer_fill",
    "ocm_fetch",
    "ocm_upload",
    "network_transfer",
    "throttle_backoff",
    "ndp_select",
]


def class_nanos(entry):
    return {cls: int(entry.get(cls, 0)) for cls in WAIT_CLASSES}


def wait_nanos(entry):
    """Time spent not executing: total minus cpu_exec."""
    return int(entry.get("total_nanos", 0)) - int(entry.get("cpu_exec", 0))


def check_conservation(stalls):
    """Returns a list of human-readable invariant violations (empty = ok)."""
    problems = []
    window = int(stalls.get("window_nanos", 0))
    background = int(stalls.get("background_nanos", 0))
    total = stalls.get("total", {})
    class_sum = sum(class_nanos(total).values())
    declared = int(total.get("total_nanos", 0))
    if class_sum != declared:
        problems.append(
            "grand total: classes sum to %d but total_nanos says %d"
            % (class_sum, declared)
        )
    if declared != window + background:
        problems.append(
            "conservation: total %d != window %d + background %d"
            % (declared, window, background)
        )
    fold = 0
    for query in stalls.get("queries", []):
        qsum = sum(class_nanos(query).values())
        qdecl = int(query.get("total_nanos", 0))
        if qsum != qdecl:
            problems.append(
                "query %s: classes sum to %d but total_nanos says %d"
                % (query.get("query_id"), qsum, qdecl)
            )
        esum = 0
        for e in query.get("entries", []):
            edecl = int(e.get("total_nanos", 0))
            ecls = sum(class_nanos(e).values())
            # Per-entry telescoping: each (query, operator, node) entry's
            # classes must sum to its own declared total — a lane total
            # that drifted inside a nested parallel section shows up here
            # even when the query-level sums still balance out.
            if ecls != edecl:
                problems.append(
                    "query %s op %s node %s: entry classes sum to %d but "
                    "total_nanos says %d"
                    % (
                        query.get("query_id"),
                        e.get("operator_id"),
                        e.get("node_id"),
                        ecls,
                        edecl,
                    )
                )
            esum += edecl
        if esum != qdecl:
            problems.append(
                "query %s: entries sum to %d but query total is %d"
                % (query.get("query_id"), esum, qdecl)
            )
        fold += qdecl
    if stalls.get("queries") is not None and fold != declared:
        problems.append(
            "per-query totals sum to %d but grand total is %d"
            % (fold, declared)
        )
    return problems


def fmt_seconds(nanos):
    return "%12.6fs" % (nanos / 1e9)


def print_class_table(total):
    nanos = class_nanos(total)
    grand = sum(nanos.values())
    print(
        "wait-state profile: %s total (%s background)"
        % (fmt_seconds(grand).strip(), fmt_seconds(int(total.get("background_nanos", 0))).strip())
    )
    for cls in sorted(WAIT_CLASSES, key=lambda c: (-nanos[c], c)):
        if nanos[cls] == 0:
            continue
        share = 100.0 * nanos[cls] / grand if grand else 0.0
        print("  %-18s %s  %5.1f%%" % (cls, fmt_seconds(nanos[cls]), share))


def top_classes(entry, count=2):
    nanos = class_nanos(entry)
    ranked = sorted(WAIT_CLASSES, key=lambda c: (-nanos[c], c))
    out = []
    for cls in ranked[:count]:
        if nanos[cls] == 0:
            break
        total = int(entry.get("total_nanos", 0))
        out.append("%s %.1f%%" % (cls, 100.0 * nanos[cls] / total))
    return ", ".join(out) if out else "-"


def print_query_table(queries, limit):
    ranked = sorted(
        (q for q in queries if int(q.get("total_nanos", 0)) > 0),
        key=lambda q: (-wait_nanos(q), int(q.get("query_id", 0))),
    )
    if not ranked:
        return
    print("top queries by wait time:")
    for query in ranked[:limit]:
        print(
            "  q%-6s %-14s total %s  wait %s  [%s]"
            % (
                query.get("query_id"),
                query.get("tag") or "(untagged)",
                fmt_seconds(int(query.get("total_nanos", 0))).strip(),
                fmt_seconds(wait_nanos(query)).strip(),
                top_classes(query),
            )
        )
    if len(ranked) > limit:
        print("  ... %d more (raise --limit)" % (len(ranked) - limit))


def print_operator_table(queries, query_id):
    for query in queries:
        if int(query.get("query_id", -1)) != query_id:
            continue
        print(
            "operators of query %d (%s):"
            % (query_id, query.get("tag") or "untagged")
        )
        for entry in query.get("entries", []):
            op = entry.get("operator_id")
            label = "query-level" if op == -1 else "op %d" % op
            print(
                "  %-12s node %-3s total %s  [%s]"
                % (
                    label,
                    entry.get("node_id"),
                    fmt_seconds(int(entry.get("total_nanos", 0))).strip(),
                    top_classes(entry),
                )
            )
        return
    print("no query %d in report" % query_id, file=sys.stderr)


def print_locks_table(stalls, manifest_path, limit):
    """Join the stall profile against the LOCKS.md rank manifest."""
    from cloudiq_locks import parse_manifest

    entries, problems = parse_manifest(manifest_path)
    if problems:
        for violation in problems:
            print("FAIL: %s" % violation, file=sys.stderr)
        return 1

    total = stalls.get("total", {})
    nanos = class_nanos(total)
    grand = sum(nanos.values())
    print("ranked locks vs stall classes (%s):" % manifest_path)
    for entry in sorted(entries, key=lambda e: e.rank):
        attributed = sum(nanos.get(cls, 0) for cls in entry.stall_classes)
        classes = ",".join(entry.stall_classes) if entry.stall_classes else "-"
        share = 100.0 * attributed / grand if grand else 0.0
        print(
            "  rank %3d  %-20s %s  %5.1f%%  [%s]"
            % (entry.rank, entry.owner, fmt_seconds(attributed), share, classes)
        )

    ranked = sorted(
        (q for q in stalls.get("queries", [])
         if int(q.get("lock_wait", 0)) > 0),
        key=lambda q: (-int(q.get("lock_wait", 0)),
                       int(q.get("query_id", 0))),
    )
    if ranked:
        print("top queries by lock_wait:")
        for query in ranked[:limit]:
            total_ns = int(query.get("total_nanos", 0))
            wait = int(query.get("lock_wait", 0))
            share = 100.0 * wait / total_ns if total_ns else 0.0
            print(
                "  q%-6s %-14s lock_wait %s  %5.1f%% of query"
                % (
                    query.get("query_id"),
                    query.get("tag") or "(untagged)",
                    fmt_seconds(wait).strip(),
                    share,
                )
            )
    else:
        print("no query recorded lock_wait time")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(
        description="render the stall profile of a --report JSON"
    )
    parser.add_argument("report", help="path to the run-report JSON")
    parser.add_argument(
        "--limit", type=int, default=15, help="queries to show (default 15)"
    )
    parser.add_argument(
        "--operators",
        type=int,
        metavar="QUERY_ID",
        help="also print the per-operator rows of one query",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="verify the conservation invariant and exit (1 on drift)",
    )
    parser.add_argument(
        "--locks",
        action="store_true",
        help="join the profile against the LOCKS.md lock-rank manifest",
    )
    parser.add_argument(
        "--manifest",
        default=os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "LOCKS.md",
        ),
        help="lock-rank manifest for --locks (default: repo LOCKS.md)",
    )
    args = parser.parse_args(argv)

    with open(args.report, "r", encoding="utf-8") as f:
        report = json.load(f)
    stalls = report.get("stalls")
    if stalls is None:
        print("report has no `stalls` section (pre-profiler report?)",
              file=sys.stderr)
        return 1

    if args.check:
        problems = check_conservation(stalls)
        # An empty profile passes conservation vacuously (0 == 0 + 0), which
        # would let a run that never attributed a single query slip through
        # the gate. Checking nothing is a failure, not a pass.
        queries = stalls.get("queries", []) or []
        if not queries:
            problems.append(
                "empty stall profile: %d queries checked — the run recorded "
                "no per-query stalls, so conservation was not exercised"
                % len(queries)
            )
        for problem in problems:
            print("FAIL: %s" % problem, file=sys.stderr)
        if not problems:
            print(
                "stall conservation ok: %d queries, %d ns window, %d ns background"
                % (
                    len(queries),
                    int(stalls.get("window_nanos", 0)),
                    int(stalls.get("background_nanos", 0)),
                )
            )
        return 1 if problems else 0

    if args.locks:
        return print_locks_table(stalls, args.manifest, args.limit)

    print_class_table(stalls.get("total", {}))
    print_query_table(stalls.get("queries", []), args.limit)
    if args.operators is not None:
        print_operator_table(stalls.get("queries", []), args.operators)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
