#!/usr/bin/env python3
"""Unit tests for stall_top.py's conservation checker.

Run directly (registered as the `cloudiq_stall_top_unittest` ctest):

    python3 tools/stall_top_test.py
"""

import copy
import os
import sys
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from stall_top import check_conservation  # noqa: E402


def entry(operator_id, node_id, classes, background=0):
    """One (query, operator, node) row in report shape: every wait class
    explicit, total_nanos derived from the classes."""
    row = {
        "operator_id": operator_id,
        "node_id": node_id,
        "cpu_exec": 0,
        "lock_wait": 0,
        "admission_queue": 0,
        "buffer_fill": 0,
        "ocm_fetch": 0,
        "ocm_upload": 0,
        "network_transfer": 0,
        "throttle_backoff": 0,
        "ndp_select": 0,
        "background_nanos": background,
    }
    row.update(classes)
    row["total_nanos"] = sum(
        row[c]
        for c in row
        if c not in ("operator_id", "node_id", "total_nanos",
                     "background_nanos")
    )
    return row


def query(query_id, tag, entries):
    """Per-query rollup: class totals folded from the entries."""
    rollup = {"query_id": query_id, "tag": tag, "entries": entries}
    for cls in ("cpu_exec", "lock_wait", "admission_queue", "buffer_fill",
                "ocm_fetch", "ocm_upload", "network_transfer",
                "throttle_backoff", "ndp_select", "total_nanos",
                "background_nanos"):
        rollup[cls] = sum(e[cls] for e in entries)
    return rollup


def profile(queries):
    total = {"total_nanos": 0, "background_nanos": 0}
    for cls in ("cpu_exec", "lock_wait", "admission_queue", "buffer_fill",
                "ocm_fetch", "ocm_upload", "network_transfer",
                "throttle_backoff", "ndp_select"):
        total[cls] = sum(q[cls] for q in queries)
        total["total_nanos"] += total[cls]
    total["background_nanos"] = sum(q["background_nanos"] for q in queries)
    return {
        "window_nanos": total["total_nanos"] - total["background_nanos"],
        "background_nanos": total["background_nanos"],
        "total": total,
        "queries": queries,
    }


def morsel_profile():
    """The morsel executor's shape: one query whose operator entry holds
    telescoped parallel-lane cpu charges plus a scope residual, and a
    query-level entry holding the job residual."""
    op = entry(0, 1, {"cpu_exec": 750_000_000})
    job = entry(-1, 1, {"cpu_exec": 250_000_000})
    return profile([query(9, "Q6", [job, op])])


class CheckConservationTest(unittest.TestCase):
    def test_consistent_profile_passes(self):
        self.assertEqual(check_conservation(morsel_profile()), [])

    def test_grand_total_drift_detected(self):
        bad = morsel_profile()
        bad["window_nanos"] += 5
        self.assertTrue(
            any("conservation" in p for p in check_conservation(bad))
        )

    def test_query_class_drift_detected(self):
        bad = morsel_profile()
        bad["queries"][0]["cpu_exec"] -= 1000
        bad["queries"][0]["total_nanos"] -= 1000
        problems = check_conservation(bad)
        self.assertTrue(problems)

    def test_per_entry_class_drift_detected(self):
        # A lane total that drifted inside one entry while the query-level
        # rollups still balance: corrupt the operator entry's cpu_exec but
        # keep every *declared* total — entry, query and grand — unchanged.
        # The pre-per-entry checker passed this profile; only the
        # per-entry telescoping check catches it.
        bad = morsel_profile()
        good = copy.deepcopy(bad)
        bad["queries"][0]["entries"][1]["cpu_exec"] -= 50_000_000

        self.assertEqual(check_conservation(good), [])
        problems = check_conservation(bad)
        self.assertEqual(len(problems), 1)
        self.assertIn("entry classes sum to", problems[0])
        self.assertIn("op 0", problems[0])

    def test_entry_sum_vs_query_total_detected(self):
        bad = morsel_profile()
        bad["queries"][0]["entries"][1]["total_nanos"] += 7
        bad["queries"][0]["entries"][1]["cpu_exec"] += 7
        problems = check_conservation(bad)
        self.assertTrue(
            any("entries sum to" in p for p in problems)
        )


if __name__ == "__main__":
    unittest.main()
