#!/usr/bin/env python3
"""cloudiq-locks: whole-tree lock-graph analyzer for the CloudIQ repo.

The prose locking discipline in src/common/mutex.h — "a higher layer's
mutex may be held while taking a lower layer's leaf lock, never the
reverse; never hold across a callback or simulated I/O" — is enforced
here, statically, with no compiler plugin (same self-contained style as
cloudiq_lint.py, whose walker, comment/string stripper and NOLINT
grammar this tool imports rather than duplicating).

What it does, per run:

  1. Parses LOCKS.md, the rank manifest: every Mutex member in src/ must
     be registered there with its owner class and a rank (ascending
     toward the leaves), and declared as
     `Mutex mu_{lockrank::kOwner};`. Unregistered or unranked mutexes in
     src/ and stale manifest rows are errors.
  2. Parses every header and .cc under the given paths: class bodies
     (brace-matched over comment/string-stripped text), Mutex members,
     member/parameter/local variable types, std::function-typed callback
     members and aliases, and REQUIRES(mu_) annotations that seed
     held-lock state for out-of-line definitions.
  3. Walks every function body tracking the set of held locks through
     MutexLock / MutexUnlock / Lock() / Unlock() / TryLock() scopes, and
     builds the may-hold-while-acquiring graph: a direct nested
     acquisition is an edge, and so is a call into another lock-owning
     class while holding (the callee may take its own lock — a
     held-across-call edge).
  4. Checks every edge against the manifest: the acquired rank must be
     strictly greater than every held rank (rank-order inversion
     otherwise), runs Tarjan SCC over the graph for deadlock cycles, and
     flags locks held across the two banned surfaces — invoking a
     callback (std::function member/local/parameter) and calling into
     the simulated-I/O layer (SimObjectStore, ObjectStoreIo,
     IoScheduler, SimExecutor, ...) from outside src/sim/.

Escape hatch: `// NOLINT(cloudiq-lock-order): <why>` on or just above a
line removes that acquisition/call edge from the graph entirely (so a
justified edge feeds neither inversion, cycle, nor surface checks). The
justification is mandatory — cloudiq_lint.py's shared NOLINT parser
already rejects bare directives.

Modes:
  cloudiq_locks.py [--root R] [paths...]     analyze (default: src)
  cloudiq_locks.py --emit-ranks FILE         generate src/common/lock_ranks.h
  cloudiq_locks.py --check-ranks FILE        fail if FILE is stale

Exits 1 on violations; the `scripts/check.sh locks` pass runs the tree
check, the freshness check, and the tripwire-enabled test targets.
"""

import argparse
import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from cloudiq_lint import (  # noqa: E402
    Violation,
    collect_files,
    norm,
    parse_nolint_directives,
    read_file,
    strip_comments_and_strings,
)

RULE = "lock-order"

# Files whose Mutex uses ARE the locking infrastructure, not clients.
INFRA_FILES = (
    "src/common/mutex.h",
    "src/common/lock_ranks.h",
    "src/common/thread_annotations.h",
)

# Calling into these types while holding any lock is "held across
# simulated I/O" — the banned surface. src/sim/ itself is exempt (the
# store orchestrates its own devices under its own lock by design).
SIM_IO_TYPES = frozenset({
    "SimObjectStore", "ObjectStoreIo", "IoScheduler", "SimExecutor",
    "SimBlockVolume", "SimLocalSsd", "Nic",
})

SOURCE_SUFFIXES = (".h", ".cc")


# --- LOCKS.md manifest -----------------------------------------------------

class ManifestEntry:
    def __init__(self, constant, rank, owner, file, stall_classes, line):
        self.constant = constant        # e.g. "kBufferManager"
        self.rank = rank                # int
        self.owner = owner              # e.g. "BufferManager"
        self.file = file                # declared-in path, repo-relative
        self.stall_classes = stall_classes  # list of wait-class names
        self.line = line                # 1-based row line in LOCKS.md


MANIFEST_ROW_RE = re.compile(
    r"^\|\s*`(k\w+)`\s*\|\s*(\d+)\s*\|\s*`(\w+)`\s*\|\s*`([^`]+)`\s*"
    r"\|([^|]*)\|")
STALL_TOKEN_RE = re.compile(r"`([a-z_]+)`")


def parse_manifest(path, text=None):
    """Parses LOCKS.md; returns (entries, violations)."""
    if text is None:
        text = read_file(path)
    entries = []
    violations = []
    seen_constants = {}
    seen_ranks = {}
    for idx, line in enumerate(text.split("\n")):
        m = MANIFEST_ROW_RE.match(line)
        if not m:
            continue
        constant, rank, owner, file, stall_cell = (
            m.group(1), int(m.group(2)), m.group(3), m.group(4), m.group(5))
        if constant in seen_constants:
            violations.append(Violation(
                path, idx + 1, RULE,
                f"duplicate manifest constant `{constant}` "
                f"(first at line {seen_constants[constant]})"))
            continue
        if rank in seen_ranks:
            violations.append(Violation(
                path, idx + 1, RULE,
                f"duplicate rank {rank} for `{constant}` "
                f"(already used by `{seen_ranks[rank]}`); ranks are a "
                "total order"))
            continue
        if rank <= 0:
            violations.append(Violation(
                path, idx + 1, RULE,
                f"rank {rank} for `{constant}` must be positive "
                "(0 is reserved for unranked)"))
            continue
        seen_constants[constant] = idx + 1
        seen_ranks[rank] = constant
        entries.append(ManifestEntry(
            constant, rank, owner, file,
            STALL_TOKEN_RE.findall(stall_cell), idx + 1))
    if not entries:
        violations.append(Violation(
            path, 1, RULE, "no manifest rows found — expected a table "
            "with |`kConstant`|rank|`Owner`|`path`|stall classes|"))
    return entries, violations


# --- generated rank header -------------------------------------------------

RANKS_HEADER_TEMPLATE = """\
#ifndef CLOUDIQ_COMMON_LOCK_RANKS_H_
#define CLOUDIQ_COMMON_LOCK_RANKS_H_

// GENERATED FILE — do not edit by hand.
//
// Emitted from LOCKS.md (the lock-rank manifest) by:
//   python3 tools/cloudiq_locks.py --emit-ranks src/common/lock_ranks.h
// scripts/check.sh locks fails if this file is stale (--check-ranks).
//
// Rank ascends toward the leaves: a thread may acquire a mutex only
// while every mutex it already holds has a strictly smaller rank.
// Rank 0 means unranked (tests/benches); the tripwire ignores it.

namespace cloudiq {{
namespace lockrank {{

{constants}

// Human name for a rank, for tripwire diagnostics.
inline constexpr const char* RankName(int rank) {{
  switch (rank) {{
{cases}
    default: return "unranked";
  }}
}}

}}  // namespace lockrank
}}  // namespace cloudiq

#endif  // CLOUDIQ_COMMON_LOCK_RANKS_H_
"""


def render_ranks_header(entries):
    constants = "\n".join(
        f"inline constexpr int {e.constant} = {e.rank};" for e in entries)
    cases = "\n".join(
        f'    case {e.rank}: return "{e.owner}";' for e in entries)
    return RANKS_HEADER_TEMPLATE.format(constants=constants, cases=cases)


# --- C++ scanning ----------------------------------------------------------

CLASS_HEAD_RE = re.compile(
    r"\b(?:class|struct)\s+"
    r"(?:[A-Z][A-Z0-9_]*\s*(?:\([^()]*\))?\s+)*"   # attribute macros
    r"([A-Za-z_]\w*)\s*(?:final\s*)?(?::|$|\Z)?")
ENUM_HEAD_RE = re.compile(r"\benum\b")
MUTEX_MEMBER_RE = re.compile(
    r"\bMutex\s+(\w+)\s*(?:\{\s*lockrank::(k\w+)\s*\})?\s*;")
MEMBER_DECL_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:const\s+)?"
    r"(?:std::(?:unique_ptr|shared_ptr)<\s*(?:const\s+)?([A-Za-z_]\w*)\s*>"
    r"|([A-Za-z_]\w*))\s*[*&]*\s+(\w+_)\s*(?:[;{=]|$)")
CALLBACK_MEMBER_RE = re.compile(
    r"^\s*(?:mutable\s+)?std::function<.*>\s+(\w+_?)\s*[;{=]")
CALLBACK_ALIAS_RE = re.compile(
    r"\busing\s+(\w+)\s*=\s*std::function<")
REQUIRES_RE = re.compile(
    r"\b(~?\w+)\s*\([^;{}]*\)\s*(?:const\s*)?"
    r"(?:ACQUIRE\([^)]*\)\s*)?REQUIRES\(\s*(\w+)\s*\)")
MUTEXLOCK_RE = re.compile(
    r"\bMutexLock\s+\w+\s*[({]\s*&\s*([\w.>*-]+?)\s*[)}]")
MUTEXUNLOCK_RE = re.compile(
    r"\bMutexUnlock\s+\w+\s*[({]\s*&\s*([\w.>*-]+?)\s*[)}]")
BARE_LOCK_RE = re.compile(r"\b(\w+)\s*[.]\s*(?:Lock|TryLock)\s*\(\s*\)")
BARE_UNLOCK_RE = re.compile(r"\b(\w+)\s*[.]\s*Unlock\s*\(\s*\)")
CALL_RE = re.compile(r"\b(\w+)\s*(->|\.)\s*(\w+)\s*\(")
DIRECT_FN_CALL_RE = re.compile(r"(?<![\w.>])(\w+)\s*\(")
OBJECT_STORE_ACCESSOR_RE = re.compile(r"\bobject_store\s*\(\s*\)\s*\.\s*\w+\s*\(")
LOCAL_DECL_RE = re.compile(
    r"^\s*(?:const\s+)?([A-Z]\w*)\s*[*&]+\s*(\w+)\s*=")
PARAM_RE = re.compile(r"([A-Z]\w*)\s*(?:<[^<>]*>)?\s*(?:const\s*)?[*&]*\s*(\w+)\s*[,)]")
FN_DEF_CC_RE = re.compile(r"\b([A-Za-z_]\w*)::(~?\w+)\s*\(")
FN_DEF_INLINE_RE = re.compile(r"\b(~?[A-Za-z_]\w*)\s*\(")


class LockDecl:
    """One Mutex member found in the tree."""

    def __init__(self, owner, member, constant, path, line):
        self.owner = owner          # enclosing class name ("" if none)
        self.member = member        # e.g. "mu_"
        self.constant = constant    # "kFoo" or None if unranked decl
        self.path = path
        self.line = line            # 1-based

    @property
    def key(self):
        return (self.owner, self.member)

    def __repr__(self):
        return f"{self.owner}::{self.member}"


class Edge:
    """May-hold-while-acquiring: holding `src` when `dst` is (possibly)
    acquired at path:line. kind: 'acquire' (direct) or 'call'
    (held-across-call into a lock-owning class)."""

    def __init__(self, src, dst, path, line, kind):
        self.src = src              # lock key (owner, member)
        self.dst = dst              # lock key
        self.path = path
        self.line = line            # 0-based index
        self.kind = kind


class ClassInfo:
    def __init__(self, name):
        self.name = name
        self.mutexes = {}           # member name -> LockDecl
        self.member_types = {}      # member name -> type name
        self.callback_members = set()
        self.requires = {}          # method name -> mutex member name


class TreeModel:
    """Everything the per-body walk needs, harvested from all files."""

    def __init__(self):
        self.classes = {}           # class name -> ClassInfo
        self.callback_aliases = set()

    def cls(self, name):
        if name not in self.classes:
            self.classes[name] = ClassInfo(name)
        return self.classes[name]

    def lock_owners(self):
        return {name for name, info in self.classes.items() if info.mutexes}


def scan_scopes(stripped_lines):
    """Brace-matches the stripped text, yielding per-line scope context.

    Returns a list (one entry per line) of the scope stack *at the start
    of that line*; each stack element is ('class', name) or
    ('fn', class_name, fn_name, seg) or ('block', None). `seg` is the
    text segment (joined) that preceded the function's opening brace —
    the signature, used for REQUIRES and parameter parsing.
    """
    per_line = []
    stack = []
    segment = []

    def innermost_class(st):
        for kind, *rest in reversed(st):
            if kind == "class":
                return rest[0]
        return ""

    def in_function(st):
        return any(kind == "fn" for kind, *_ in st)

    for line in stripped_lines:
        per_line.append(list(stack))
        i, n = 0, len(line)
        while i < n:
            c = line[i]
            if c == "{":
                seg = "".join(segment).strip()
                m_class = CLASS_HEAD_RE.search(seg)
                opened = ("block", None)
                if (m_class and not ENUM_HEAD_RE.search(seg)
                        and "=" not in seg.split("class")[0]):
                    opened = ("class", m_class.group(1))
                elif not in_function(stack):
                    m_cc = FN_DEF_CC_RE.search(seg)
                    if m_cc:
                        opened = ("fn", m_cc.group(1), m_cc.group(2), seg)
                    else:
                        cls = innermost_class(stack)
                        if cls and "(" in seg and "=" not in seg.split("(")[0]:
                            m_in = FN_DEF_INLINE_RE.search(seg)
                            if m_in:
                                opened = ("fn", cls, m_in.group(1), seg)
                else:
                    # Lambda or nested block inside a function body: the
                    # held-lock model treats it as part of the body.
                    opened = ("block", None)
                stack.append(opened)
                segment = []
            elif c == "}":
                if stack:
                    stack.pop()
                segment = []
            elif c == ";":
                segment = []
            else:
                segment.append(c)
            i += 1
        segment.append(" ")
    return per_line


def harvest_file(model, path, ctx_lines, per_line_scopes):
    """First pass over one file: class members, callbacks, REQUIRES."""
    for idx, line in enumerate(ctx_lines):
        scopes = per_line_scopes[idx]
        cls_name = ""
        for kind, *rest in reversed(scopes):
            if kind == "class":
                cls_name = rest[0]
                break
        in_fn = any(kind == "fn" for kind, *_ in scopes)
        for m in CALLBACK_ALIAS_RE.finditer(line):
            model.callback_aliases.add(m.group(1))
        if not cls_name or in_fn:
            continue
        info = model.cls(cls_name)
        m = MUTEX_MEMBER_RE.search(line)
        if m:
            info.mutexes[m.group(1)] = LockDecl(
                cls_name, m.group(1), m.group(2), path, idx + 1)
            continue
        m = CALLBACK_MEMBER_RE.match(line)
        if m:
            info.callback_members.add(m.group(1))
            continue
        m = MEMBER_DECL_RE.match(line)
        if m:
            type_name = m.group(1) or m.group(2)
            if type_name in ("mutable", "const", "static", "using",
                            "return", "typename"):
                pass
            else:
                info.member_types[m.group(3)] = type_name
                if type_name in model.callback_aliases:
                    info.callback_members.add(m.group(3))
        m = REQUIRES_RE.search(line)
        if m:
            info.requires[m.group(1)] = m.group(2)


class HeldEntry:
    def __init__(self, kind, lock, depth, line):
        self.kind = kind    # 'lock' or 'unlock'
        self.lock = lock    # lock key (owner, member)
        self.depth = depth
        self.line = line


class BodyWalker:
    """Second pass: per-function held-lock tracking and edge emission."""

    def __init__(self, model, path, in_sim_layer, suppressed,
                 edges, violations):
        self.model = model
        self.path = path
        self.in_sim_layer = in_sim_layer
        self.suppressed = suppressed  # set of 0-based suppressed lines
        self.edges = edges
        self.violations = violations
        self.lock_owner_classes = model.lock_owners()

    def resolve_lock_expr(self, expr, cls_name, var_types):
        """`mu_`, `this->mu_`, `var->mu_`, `var.mu_` -> lock key."""
        expr = expr.strip()
        m = re.match(r"^(?:this->)?(\w+)$", expr)
        if m:
            info = self.model.classes.get(cls_name)
            if info and m.group(1) in info.mutexes:
                return (cls_name, m.group(1))
            return None
        m = re.match(r"^(\*?\w+)(?:->|\.)(\w+)$", expr)
        if m:
            var, member = m.group(1).lstrip("*"), m.group(2)
            type_name = var_types.get(var)
            if type_name is None:
                own = self.model.classes.get(cls_name)
                if own:
                    type_name = own.member_types.get(var)
            if type_name:
                info = self.model.classes.get(type_name)
                if info and member in info.mutexes:
                    return (type_name, member)
        return None

    def walk_function(self, cls_name, fn_name, signature, lines,
                      start_idx, scope_depth_at_entry, per_line_scopes):
        """Walks one function body (lines[start_idx..] until its scope
        closes), tracking held locks and emitting edges/violations."""
        info = self.model.classes.get(cls_name)
        var_types = {}
        callback_vars = set()
        if signature:
            sig_args = signature[signature.find("("):]
            for m in PARAM_RE.finditer(sig_args):
                var_types[m.group(2)] = m.group(1)
                if (m.group(1) in self.model.callback_aliases
                        or "function" in m.group(1)):
                    callback_vars.add(m.group(2))
            if "std::function" in signature:
                for m in re.finditer(r"std::function<[^;]*?>\s*&?\s*(\w+)\s*[,)]",
                                     signature):
                    callback_vars.add(m.group(1))

        held = []
        if info:
            req = info.requires.get(fn_name)
            if req and req in info.mutexes:
                held.append(HeldEntry("lock", (cls_name, req), -1, start_idx))

        idx = start_idx
        while idx < len(lines):
            scopes = per_line_scopes[idx]
            if idx > start_idx and len(scopes) < scope_depth_at_entry:
                break
            depth = len(scopes)
            held = [h for h in held if h.depth == -1 or h.depth <= depth]
            line = lines[idx]
            self.scan_line(line, idx, depth, cls_name, info, var_types,
                           callback_vars, held)
            m = LOCAL_DECL_RE.match(line)
            if m and m.group(1) in self.model.classes:
                var_types[m.group(2)] = m.group(1)
            if "std::function" in line:
                m = re.match(r"^\s*(?:const\s+)?std::function<.*>\s*&?\s*(\w+)",
                             line)
                if m:
                    callback_vars.add(m.group(1))
            idx += 1
        return idx

    def active_holds(self, held):
        """Locks currently held = lock entries minus those masked by an
        in-scope MutexUnlock of the same lock (innermost match wins)."""
        active = []
        masked = []
        for h in held:
            if h.kind == "unlock":
                masked.append(h.lock)
        for h in held:
            if h.kind == "lock":
                if h.lock in masked:
                    masked.remove(h.lock)
                else:
                    active.append(h)
        return active

    def scan_line(self, line, idx, depth, cls_name, info, var_types,
                  callback_vars, held):
        suppressed = idx in self.suppressed

        acquired_here = []
        for m in MUTEXLOCK_RE.finditer(line):
            lock = self.resolve_lock_expr(m.group(1), cls_name, var_types)
            if lock:
                acquired_here.append(lock)
        for m in BARE_LOCK_RE.finditer(line):
            lock = self.resolve_lock_expr(m.group(1), cls_name, var_types)
            if lock:
                acquired_here.append(lock)

        released_here = []
        for m in MUTEXUNLOCK_RE.finditer(line):
            lock = self.resolve_lock_expr(m.group(1), cls_name, var_types)
            if lock:
                released_here.append(lock)
        for m in BARE_UNLOCK_RE.finditer(line):
            lock = self.resolve_lock_expr(m.group(1), cls_name, var_types)
            if lock:
                # Bare Unlock() releases for good (not scope-bound).
                for h in reversed(held):
                    if h.kind == "lock" and h.lock == lock:
                        held.remove(h)
                        break

        active = self.active_holds(held)
        for lock in acquired_here:
            if not suppressed:
                for h in active:
                    self.edges.append(Edge(h.lock, lock, self.path, idx,
                                           "acquire"))
            held.append(HeldEntry("lock", lock, depth, idx))
        for lock in released_here:
            held.append(HeldEntry("unlock", lock, depth, idx))

        active = self.active_holds(held)
        if not active or suppressed:
            return

        # Banned surface 1: invoking a callback while holding any lock.
        callback_names = set(callback_vars)
        if info:
            callback_names |= info.callback_members
        for m in DIRECT_FN_CALL_RE.finditer(line):
            name = m.group(1)
            if name in callback_names:
                holder = active[-1]
                self.violations.append(Violation(
                    self.path, idx + 1, RULE,
                    f"`{name}(...)` invoked while holding "
                    f"{holder.lock[0]}::{holder.lock[1]} — a lock must "
                    "never be held across a callback (drop it with "
                    "MutexUnlock first)"))
                break

        # Banned surface 2: calling into the simulated-I/O layer.
        if not self.in_sim_layer:
            sim_hit = None
            for m in CALL_RE.finditer(line):
                var, callee = m.group(1), m.group(3)
                type_name = var_types.get(var)
                if type_name is None and info:
                    type_name = info.member_types.get(var)
                if type_name in SIM_IO_TYPES:
                    sim_hit = (var, type_name, callee)
                    break
            if sim_hit is None and OBJECT_STORE_ACCESSOR_RE.search(line):
                sim_hit = ("object_store()", "SimObjectStore", "")
            if sim_hit:
                holder = active[-1]
                self.violations.append(Violation(
                    self.path, idx + 1, RULE,
                    f"simulated I/O via `{sim_hit[0]}` "
                    f"({sim_hit[1]}) while holding "
                    f"{holder.lock[0]}::{holder.lock[1]} — a lock must "
                    "never be held across simulated I/O"))

        # Held-across-call edges: a call into another lock-owning class
        # may take that class's lock inside.
        for m in CALL_RE.finditer(line):
            var, callee = m.group(1), m.group(3)
            if callee in ("Lock", "Unlock", "TryLock", "AssertHeld"):
                continue
            type_name = var_types.get(var)
            if type_name is None and info:
                type_name = info.member_types.get(var)
            if (type_name in self.lock_owner_classes
                    and type_name != cls_name):
                target = self.model.classes[type_name]
                for member in target.mutexes:
                    for h in self.active_holds(held):
                        self.edges.append(Edge(
                            h.lock, (type_name, member), self.path, idx,
                            "call"))


def analyze_paths(paths, root="", manifest_path=None):
    """Runs the whole analysis; returns a list of Violations."""
    violations = []

    if manifest_path is None:
        manifest_path = os.path.join(root, "LOCKS.md") if root else "LOCKS.md"
    if not os.path.exists(manifest_path):
        return [Violation(manifest_path, 1, RULE,
                          "rank manifest LOCKS.md not found")]
    entries, v = parse_manifest(manifest_path)
    violations.extend(v)
    by_constant = {e.constant: e for e in entries}
    rank_of_constant = {e.constant: e.rank for e in entries}

    files = [f for f in collect_files(paths, root)
             if norm(f).endswith(SOURCE_SUFFIXES)
             and not any(norm(f).endswith(x) for x in INFRA_FILES)]

    # Pass 1: harvest classes, members, callbacks, REQUIRES.
    model = TreeModel()
    file_data = {}
    for path in files:
        text = read_file(path)
        original_lines = text.split("\n")
        stripped_lines = strip_comments_and_strings(text).split("\n")
        scopes = scan_scopes(stripped_lines)
        suppressed_map, nolint_v = parse_nolint_directives(
            path, original_lines, stripped_lines)
        # nolint-justification errors are cloudiq_lint's to report.
        suppressed = suppressed_map.get(RULE, set())
        file_data[path] = (stripped_lines, scopes, suppressed)
        harvest_file(model, path, stripped_lines, scopes)

    # Manifest <-> tree cross-check.
    declared = {}   # constant -> LockDecl
    for info in model.classes.values():
        for decl in info.mutexes.values():
            rel = norm(os.path.relpath(decl.path, root) if root
                       else decl.path)
            in_src = rel.startswith("src/")
            if decl.constant is None:
                if in_src and (decl.line - 1) not in \
                        file_data[decl.path][2]:
                    violations.append(Violation(
                        decl.path, decl.line, RULE,
                        f"unranked mutex {decl!r}: every Mutex in src/ "
                        "must be declared as `Mutex "
                        f"{decl.member}{{lockrank::k{decl.owner}}};` and "
                        "registered in LOCKS.md"))
                continue
            entry = by_constant.get(decl.constant)
            if entry is None:
                violations.append(Violation(
                    decl.path, decl.line, RULE,
                    f"mutex {decl!r} uses `lockrank::{decl.constant}` "
                    "which is not registered in LOCKS.md"))
                continue
            if entry.owner != decl.owner:
                violations.append(Violation(
                    decl.path, decl.line, RULE,
                    f"mutex {decl!r} is declared with "
                    f"`{decl.constant}` but LOCKS.md registers that "
                    f"constant to owner `{entry.owner}`"))
            declared[decl.constant] = decl
    for entry in entries:
        if entry.constant not in declared:
            violations.append(Violation(
                manifest_path, entry.line, RULE,
                f"stale manifest row: `{entry.constant}` "
                f"(owner `{entry.owner}`) matches no Mutex declaration "
                "in the scanned tree"))

    # Pass 2: walk function bodies, build the edge set.
    edges = []
    for path in files:
        stripped_lines, scopes, suppressed = file_data[path]
        rel = norm(os.path.relpath(path, root) if root else path)
        in_sim_layer = rel.startswith("src/sim/")
        walker = BodyWalker(model, path, in_sim_layer, suppressed,
                            edges, violations)
        idx = 0
        while idx < len(stripped_lines):
            # A function starts on the line after its scope appears.
            st = scopes[idx]
            fn = next((s for s in st if s[0] == "fn"), None)
            if fn is not None and (idx == 0
                                   or not any(s[0] == "fn"
                                              for s in scopes[idx - 1])):
                end = walker.walk_function(
                    fn[1], fn[2], fn[3] if len(fn) > 3 else "",
                    stripped_lines, idx, len(st), scopes)
                idx = end
            else:
                idx += 1

    # Rank check on every edge.
    def rank_of(lock):
        info = model.classes.get(lock[0])
        if not info:
            return None
        decl = info.mutexes.get(lock[1])
        if not decl or decl.constant is None:
            return None
        return rank_of_constant.get(decl.constant)

    reported = set()
    for e in edges:
        r_src, r_dst = rank_of(e.src), rank_of(e.dst)
        if r_src is None or r_dst is None:
            continue
        if r_dst > r_src:
            continue
        key = (e.path, e.line, e.src, e.dst)
        if key in reported:
            continue
        reported.add(key)
        how = ("acquires" if e.kind == "acquire"
               else "calls into the class owning")
        violations.append(Violation(
            e.path, e.line + 1, RULE,
            f"rank inversion: {how} {e.dst[0]}::{e.dst[1]} "
            f"(rank {r_dst}) while holding {e.src[0]}::{e.src[1]} "
            f"(rank {r_src}); LOCKS.md requires strictly ascending "
            "acquisition"))

    # Cycle detection (Tarjan SCC) over the lock graph — catches
    # deadlocks even between unranked fixture locks.
    graph = {}
    edge_site = {}
    for e in edges:
        graph.setdefault(e.src, set()).add(e.dst)
        graph.setdefault(e.dst, set())
        edge_site.setdefault((e.src, e.dst), (e.path, e.line))
    for scc in tarjan_sccs(graph):
        cyclic = len(scc) > 1 or (len(scc) == 1
                                  and scc[0] in graph.get(scc[0], ()))
        if not cyclic:
            continue
        names = sorted(f"{c}::{m}" for c, m in scc)
        site = None
        for a in scc:
            for b in graph.get(a, ()):
                if b in scc and (a, b) in edge_site:
                    site = edge_site[(a, b)]
                    break
            if site:
                break
        path, line = site if site else (manifest_path, 0)
        violations.append(Violation(
            path, line + 1, RULE,
            "deadlock cycle in the lock graph: "
            + " <-> ".join(names)))

    return violations


def tarjan_sccs(graph):
    """Iterative Tarjan; yields each strongly connected component."""
    index = {}
    low = {}
    on_stack = set()
    stack = []
    counter = [0]
    sccs = []
    for start in sorted(graph):
        if start in index:
            continue
        work = [(start, iter(sorted(graph[start])))]
        index[start] = low[start] = counter[0]
        counter[0] += 1
        stack.append(start)
        on_stack.add(start)
        while work:
            node, it = work[-1]
            advanced = False
            for nxt in it:
                if nxt not in index:
                    index[nxt] = low[nxt] = counter[0]
                    counter[0] += 1
                    stack.append(nxt)
                    on_stack.add(nxt)
                    work.append((nxt, iter(sorted(graph[nxt]))))
                    advanced = True
                    break
                elif nxt in on_stack:
                    low[node] = min(low[node], index[nxt])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                scc = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    scc.append(w)
                    if w == node:
                        break
                sccs.append(scc)
    return sccs


DEFAULT_PATHS = ["src"]


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="CloudIQ lock-graph analyzer (rank manifest: LOCKS.md)")
    parser.add_argument("paths", nargs="*", default=None,
                        help="files or directories (default: src)")
    parser.add_argument("--root", default="",
                        help="prefix for all paths (repo root)")
    parser.add_argument("--manifest", default=None,
                        help="rank manifest (default: <root>/LOCKS.md)")
    parser.add_argument("--emit-ranks", metavar="FILE",
                        help="write the generated rank header and exit")
    parser.add_argument("--check-ranks", metavar="FILE",
                        help="fail if FILE differs from the manifest")
    args = parser.parse_args(argv)

    manifest = args.manifest
    if manifest is None:
        manifest = (os.path.join(args.root, "LOCKS.md") if args.root
                    else "LOCKS.md")

    if args.emit_ranks or args.check_ranks:
        entries, violations = parse_manifest(manifest)
        for v in violations:
            print(v)
        if violations:
            return 1
        rendered = render_ranks_header(entries)
        if args.emit_ranks:
            with open(args.emit_ranks, "w", encoding="utf-8") as f:
                f.write(rendered)
            print(f"cloudiq-locks: wrote {args.emit_ranks} "
                  f"({len(entries)} ranks)")
            return 0
        current = read_file(args.check_ranks) \
            if os.path.exists(args.check_ranks) else ""
        if current != rendered:
            print(f"{args.check_ranks}:1: [cloudiq-{RULE}] stale "
                  "generated rank header; regenerate with "
                  f"`python3 tools/cloudiq_locks.py --emit-ranks "
                  f"{args.check_ranks}`", file=sys.stderr)
            return 1
        print(f"cloudiq-locks: {args.check_ranks} is fresh")
        return 0

    paths = args.paths or DEFAULT_PATHS
    violations = analyze_paths(paths, args.root, manifest)
    for v in violations:
        print(v)
    if violations:
        print(f"cloudiq-locks: {len(violations)} violation(s)",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
