#!/usr/bin/env python3
"""Unit tests for cloudiq_locks.py: manifest parsing, the lock-graph
walk, and every violation class — unregistered mutex, rank inversion,
deadlock cycle, held-across-callback, held-across-sim-I/O — plus the
justified-NOLINT escape and the generated-rank-header roundtrip. Each
fixture is a miniature repo tree (LOCKS.md + src files) in a temp dir,
mirroring cloudiq_lint_test.py's harness."""

import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import cloudiq_locks  # noqa: E402

MANIFEST = """\
# fixture manifest

| constant | rank | owner class | declared in | stall classes | notes |
|---|---|---|---|---|---|
| `kEngine` | 10 | `Engine` | `src/engine/engine.h` | `lock_wait` | top |
| `kCache` | 50 | `Cache` | `src/cache/cache.h` | `buffer_fill` | mid |
| `kStore` | 70 | `Store` | `src/store/store.h` | - | leaf |
"""

ENGINE_H = """\
class Engine {
 public:
  void Run() {
    MutexLock lock(&mu_);
    store_->Get();
  }
 private:
  mutable Mutex mu_{lockrank::kEngine};
  Store* store_;
};
"""

STORE_H = """\
class Store {
 public:
  void Get() { MutexLock lock(&mu_); }
 private:
  mutable Mutex mu_{lockrank::kStore};
};
"""

CACHE_H = """\
class Cache {
 public:
  void Fill();
 private:
  void FillLocked() REQUIRES(mu_);
  mutable Mutex mu_{lockrank::kCache};
  SimObjectStore* sim_store_;
};
"""


class LocksFixtureTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()

    def tearDown(self):
        self.tmp.cleanup()

    def write(self, rel_path, content):
        path = os.path.join(self.tmp.name, rel_path)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as f:
            f.write(content)
        return path

    def analyze(self, files, manifest=MANIFEST):
        self.write("LOCKS.md", manifest)
        for rel_path, content in files.items():
            self.write(rel_path, content)
        return cloudiq_locks.analyze_paths(["src"], root=self.tmp.name)

    def msgs(self, violations):
        return "\n".join(repr(v) for v in violations)

    # --- manifest ----------------------------------------------------------

    def test_manifest_parses_rows(self):
        path = self.write("LOCKS.md", MANIFEST)
        entries, violations = cloudiq_locks.parse_manifest(path)
        self.assertEqual(violations, [])
        self.assertEqual([e.constant for e in entries],
                         ["kEngine", "kCache", "kStore"])
        self.assertEqual([e.rank for e in entries], [10, 50, 70])
        self.assertEqual(entries[0].stall_classes, ["lock_wait"])
        self.assertEqual(entries[2].stall_classes, [])

    def test_manifest_rejects_duplicate_rank(self):
        bad = MANIFEST + "| `kOther` | 70 | `Other` | `src/o/o.h` | - | |\n"
        path = self.write("LOCKS.md", bad)
        _, violations = cloudiq_locks.parse_manifest(path)
        self.assertIn("duplicate rank 70", self.msgs(violations))

    def test_manifest_rejects_duplicate_constant(self):
        bad = MANIFEST + "| `kStore` | 71 | `Store2` | `src/o/o.h` | - | |\n"
        path = self.write("LOCKS.md", bad)
        _, violations = cloudiq_locks.parse_manifest(path)
        self.assertIn("duplicate manifest constant `kStore`",
                      self.msgs(violations))

    def test_missing_manifest_is_an_error(self):
        violations = cloudiq_locks.analyze_paths(
            ["src"], root=self.tmp.name)
        self.assertIn("LOCKS.md not found", self.msgs(violations))

    def test_stale_manifest_row(self):
        # kCache is registered but no Cache class exists in the tree.
        violations = self.analyze({
            "src/engine/engine.h": ENGINE_H,
            "src/store/store.h": STORE_H,
        })
        text = self.msgs(violations)
        self.assertIn("stale manifest row: `kCache`", text)
        self.assertEqual(len(violations), 1, text)

    # --- registration ------------------------------------------------------

    def test_clean_tree_has_no_violations(self):
        violations = self.analyze({
            "src/engine/engine.h": ENGINE_H,
            "src/store/store.h": STORE_H,
            "src/cache/cache.h": CACHE_H,
        })
        self.assertEqual(violations, [], self.msgs(violations))

    def test_unregistered_mutex_is_flagged(self):
        rogue = (
            "class Rogue {\n"
            " private:\n"
            "  mutable Mutex mu_;\n"
            "};\n"
        )
        violations = self.analyze({
            "src/engine/engine.h": ENGINE_H,
            "src/store/store.h": STORE_H,
            "src/cache/cache.h": CACHE_H,
            "src/rogue/rogue.h": rogue,
        })
        text = self.msgs(violations)
        self.assertIn("unranked mutex Rogue::mu_", text)
        self.assertIn("registered in LOCKS.md", text)

    def test_unregistered_constant_is_flagged(self):
        rogue = (
            "class Rogue {\n"
            " private:\n"
            "  mutable Mutex mu_{lockrank::kGhost};\n"
            "};\n"
        )
        violations = self.analyze({
            "src/engine/engine.h": ENGINE_H,
            "src/store/store.h": STORE_H,
            "src/cache/cache.h": CACHE_H,
            "src/rogue/rogue.h": rogue,
        })
        self.assertIn("`lockrank::kGhost` which is not registered",
                      self.msgs(violations))

    def test_owner_mismatch_is_flagged(self):
        imposter = (
            "class Imposter {\n"
            " private:\n"
            "  mutable Mutex mu_{lockrank::kCache};\n"
            "};\n"
        )
        violations = self.analyze({
            "src/engine/engine.h": ENGINE_H,
            "src/store/store.h": STORE_H,
            "src/cache/cache.h": CACHE_H,
            "src/rogue/imposter.h": imposter,
        })
        self.assertIn("registers that constant to owner `Cache`",
                      self.msgs(violations))

    def test_unranked_mutex_nolint_escape(self):
        rogue = (
            "class Rogue {\n"
            " private:\n"
            "  // NOLINT(cloudiq-lock-order): fixture-only lock, "
            "never nests.\n"
            "  mutable Mutex mu_;\n"
            "};\n"
        )
        violations = self.analyze({
            "src/engine/engine.h": ENGINE_H,
            "src/store/store.h": STORE_H,
            "src/cache/cache.h": CACHE_H,
            "src/rogue/rogue.h": rogue,
        })
        self.assertEqual(violations, [], self.msgs(violations))

    # --- rank inversions ---------------------------------------------------

    def test_direct_nested_acquire_inversion(self):
        store_bad = (
            "class Store {\n"
            " public:\n"
            "  void Get() {\n"
            "    MutexLock lock(&mu_);\n"
            "    MutexLock lock2(&engine_->mu_);\n"
            "  }\n"
            " private:\n"
            "  mutable Mutex mu_{lockrank::kStore};\n"
            "  Engine* engine_;\n"
            "};\n"
        )
        violations = self.analyze({
            "src/engine/engine.h": ENGINE_H,
            "src/store/store.h": store_bad,
            "src/cache/cache.h": CACHE_H,
        })
        text = self.msgs(violations)
        self.assertIn("rank inversion", text)
        self.assertIn("acquires Engine::mu_ (rank 10) while holding "
                      "Store::mu_ (rank 70)", text)

    def test_held_across_call_inversion(self):
        # Store (rank 70) holds its lock while calling into Engine
        # (rank 10) — the callee may take its own lock.
        store_bad = (
            "class Store {\n"
            " public:\n"
            "  void Get() {\n"
            "    MutexLock lock(&mu_);\n"
            "    engine_->Poke();\n"
            "  }\n"
            " private:\n"
            "  mutable Mutex mu_{lockrank::kStore};\n"
            "  Engine* engine_;\n"
            "};\n"
        )
        violations = self.analyze({
            "src/engine/engine.h": ENGINE_H,
            "src/store/store.h": store_bad,
            "src/cache/cache.h": CACHE_H,
        })
        text = self.msgs(violations)
        self.assertIn("rank inversion", text)
        self.assertIn("calls into the class owning Engine::mu_", text)

    def test_ascending_order_is_clean(self):
        # Engine (10) calling into Store (70) is the sanctioned
        # direction; covered by test_clean_tree, re-asserted here with a
        # direct nested acquire.
        engine_nested = (
            "class Engine {\n"
            " public:\n"
            "  void Run() {\n"
            "    MutexLock lock(&mu_);\n"
            "    MutexLock lock2(&store_->mu_);\n"
            "  }\n"
            "  mutable Mutex mu_{lockrank::kEngine};\n"
            "  Store* store_;\n"
            "};\n"
        )
        violations = self.analyze({
            "src/engine/engine.h": engine_nested,
            "src/store/store.h": STORE_H,
            "src/cache/cache.h": CACHE_H,
        })
        self.assertEqual(violations, [], self.msgs(violations))

    def test_nolint_escape_suppresses_inversion(self):
        store_escaped = (
            "class Store {\n"
            " public:\n"
            "  void Get() {\n"
            "    MutexLock lock(&mu_);\n"
            "    // NOLINT(cloudiq-lock-order): fixture justification —\n"
            "    // single-threaded maintenance path.\n"
            "    MutexLock lock2(&engine_->mu_);\n"
            "  }\n"
            " private:\n"
            "  mutable Mutex mu_{lockrank::kStore};\n"
            "  Engine* engine_;\n"
            "};\n"
        )
        violations = self.analyze({
            "src/engine/engine.h": ENGINE_H,
            "src/store/store.h": store_escaped,
            "src/cache/cache.h": CACHE_H,
        })
        self.assertEqual(violations, [], self.msgs(violations))

    # --- cycles ------------------------------------------------------------

    def test_two_lock_cycle_is_reported(self):
        engine_bad = (
            "class Engine {\n"
            " public:\n"
            "  void Run() {\n"
            "    MutexLock lock(&mu_);\n"
            "    MutexLock lock2(&store_->mu_);\n"
            "  }\n"
            "  mutable Mutex mu_{lockrank::kEngine};\n"
            "  Store* store_;\n"
            "};\n"
        )
        store_bad = (
            "class Store {\n"
            " public:\n"
            "  void Get() {\n"
            "    MutexLock lock(&mu_);\n"
            "    MutexLock lock2(&engine_->mu_);\n"
            "  }\n"
            "  mutable Mutex mu_{lockrank::kStore};\n"
            "  Engine* engine_;\n"
            "};\n"
        )
        violations = self.analyze({
            "src/engine/engine.h": engine_bad,
            "src/store/store.h": store_bad,
            "src/cache/cache.h": CACHE_H,
        })
        text = self.msgs(violations)
        self.assertIn("deadlock cycle in the lock graph", text)
        self.assertIn("Engine::mu_ <-> Store::mu_", text)
        # The Store->Engine leg is also a rank inversion.
        self.assertIn("rank inversion", text)

    # --- banned surfaces ---------------------------------------------------

    def test_held_across_callback(self):
        cache_bad = (
            "class Cache {\n"
            " public:\n"
            "  void Fill() {\n"
            "    MutexLock lock(&mu_);\n"
            "    on_fill_(1);\n"
            "  }\n"
            " private:\n"
            "  mutable Mutex mu_{lockrank::kCache};\n"
            "  std::function<void(int)> on_fill_;\n"
            "};\n"
        )
        violations = self.analyze({
            "src/engine/engine.h": ENGINE_H,
            "src/store/store.h": STORE_H,
            "src/cache/cache.h": cache_bad,
        })
        self.assertIn("never be held across a callback",
                      self.msgs(violations))

    def test_mutex_unlock_masks_callback(self):
        cache_ok = (
            "class Cache {\n"
            " public:\n"
            "  void Fill() {\n"
            "    MutexLock lock(&mu_);\n"
            "    {\n"
            "      MutexUnlock unlock(&mu_);\n"
            "      on_fill_(1);\n"
            "    }\n"
            "  }\n"
            " private:\n"
            "  mutable Mutex mu_{lockrank::kCache};\n"
            "  std::function<void(int)> on_fill_;\n"
            "};\n"
        )
        violations = self.analyze({
            "src/engine/engine.h": ENGINE_H,
            "src/store/store.h": STORE_H,
            "src/cache/cache.h": cache_ok,
        })
        self.assertEqual(violations, [], self.msgs(violations))

    def test_held_across_sim_io(self):
        cache_cc = (
            "#include \"cache/cache.h\"\n"
            "namespace cloudiq {\n"
            "void Cache::FillLocked() {\n"
            "  sim_store_->Get(1);\n"
            "}\n"
            "}  // namespace cloudiq\n"
        )
        violations = self.analyze({
            "src/engine/engine.h": ENGINE_H,
            "src/store/store.h": STORE_H,
            "src/cache/cache.h": CACHE_H,
            "src/cache/cache.cc": cache_cc,
        })
        text = self.msgs(violations)
        self.assertIn("never be held across simulated I/O", text)
        self.assertIn("cache.cc:4", text)

    def test_sim_layer_is_exempt_from_sim_io_rule(self):
        # src/sim/ orchestrates its own devices under its own lock.
        manifest = MANIFEST + \
            "| `kSimStore` | 80 | `SimStore` | `src/sim/s.h` | - | |\n"
        sim_h = (
            "class SimStore {\n"
            " public:\n"
            "  void Get() {\n"
            "    MutexLock lock(&mu_);\n"
            "    sched_->Run(1);\n"
            "  }\n"
            " private:\n"
            "  mutable Mutex mu_{lockrank::kSimStore};\n"
            "  IoScheduler* sched_;\n"
            "};\n"
        )
        violations = self.analyze({
            "src/engine/engine.h": ENGINE_H,
            "src/store/store.h": STORE_H,
            "src/cache/cache.h": CACHE_H,
            "src/sim/s.h": sim_h,
        }, manifest=manifest)
        self.assertEqual(violations, [], self.msgs(violations))

    def test_requires_seeds_held_state_for_out_of_line_bodies(self):
        # Same as test_held_across_sim_io but asserting the REQUIRES
        # side: no MutexLock appears anywhere in the .cc.
        cache_cc = (
            "#include \"cache/cache.h\"\n"
            "void Cache::FillLocked() {\n"
            "  sim_store_->Get(1);\n"
            "}\n"
        )
        violations = self.analyze({
            "src/engine/engine.h": ENGINE_H,
            "src/store/store.h": STORE_H,
            "src/cache/cache.h": CACHE_H,
            "src/cache/cache.cc": cache_cc,
        })
        self.assertIn("while holding Cache::mu_", self.msgs(violations))

    # --- generated rank header --------------------------------------------

    def test_emit_and_check_ranks_roundtrip(self):
        manifest = self.write("LOCKS.md", MANIFEST)
        ranks = os.path.join(self.tmp.name, "lock_ranks.h")
        rc = cloudiq_locks.main(
            ["--manifest", manifest, "--emit-ranks", ranks])
        self.assertEqual(rc, 0)
        with open(ranks, encoding="utf-8") as f:
            text = f.read()
        self.assertIn("inline constexpr int kEngine = 10;", text)
        self.assertIn('case 70: return "Store";', text)
        self.assertIn("GENERATED FILE", text)
        rc = cloudiq_locks.main(
            ["--manifest", manifest, "--check-ranks", ranks])
        self.assertEqual(rc, 0)

    def test_check_ranks_fails_on_stale_header(self):
        manifest = self.write("LOCKS.md", MANIFEST)
        ranks = self.write("lock_ranks.h", "// stale contents\n")
        rc = cloudiq_locks.main(
            ["--manifest", manifest, "--check-ranks", ranks])
        self.assertEqual(rc, 1)

    # --- CLI ---------------------------------------------------------------

    def test_main_exits_nonzero_on_violations(self):
        self.write("LOCKS.md", MANIFEST)
        self.write("src/engine/engine.h", ENGINE_H)
        self.write("src/store/store.h", STORE_H)
        # kCache is stale -> violation.
        rc = cloudiq_locks.main(["--root", self.tmp.name, "src"])
        self.assertEqual(rc, 1)

    def test_main_exits_zero_on_clean_tree(self):
        self.write("LOCKS.md", MANIFEST)
        self.write("src/engine/engine.h", ENGINE_H)
        self.write("src/store/store.h", STORE_H)
        self.write("src/cache/cache.h", CACHE_H)
        rc = cloudiq_locks.main(["--root", self.tmp.name, "src"])
        self.assertEqual(rc, 0)


if __name__ == "__main__":
    unittest.main()
