#!/usr/bin/env bash
# Bench snapshot: seeds the performance trajectory with the near-data
# processing numbers. Runs the CPU micro-benchmarks (codec / keygen hot
# loops NDP leans on) and the bench_ndp crossover sweep, then distills
# both into BENCH_ndp.json at the repo root:
#
#   - per case x mode (off/on/auto): NIC bytes moved, server-side bytes
#     scanned/returned, simulated seconds, $ per query, store-side
#     SELECT latency p50/p95, pushed or not;
#   - the micro-benchmark table (name + ns/op) for the decode paths.
#
# Also snapshots the wait-state stall profile into BENCH_profile.json:
# the per-class stall breakdown of the sequential power run and the
# multi-tenant concurrency bench (per-tenant gauges included), plus the
# micro table again so one file carries both CPU and wait trajectories.
#
# And the cost-planning trajectory into BENCH_costopt.json: per planning
# mode the warm-rescan spend / latency / prediction error and the
# budget-guard overshoot, all lower-is-better so bench_compare.py can
# gate them directly.
#
# And the morsel-executor trajectory into BENCH_parallel.json: the
# deterministic Q1/Q6 simulated seconds (numbers, so bench_compare.py
# gates them) plus the native-mode wall seconds / speedups per worker
# count and the host core count (strings — host wall time on a shared
# box is too noisy to gate, and speedup saturates at the core count, so
# these are recorded for the trajectory, not compared).
# Compare two snapshots with scripts/bench_compare.py.
#
# Usage: scripts/bench_snapshot.sh            (SF 0.01 by default)
#        CLOUDIQ_BENCH_SF=0.02 scripts/bench_snapshot.sh

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

echo "=== bench_snapshot: build bench_micro + bench_ndp + bench_concurrency + tpch_power_run + bench_costopt + bench_fig7_scale_up ==="
cmake -B build -S . > build-configure.log 2>&1 || {
  cat build-configure.log; exit 1; }
cmake --build build -j "${JOBS}" \
  --target bench_micro bench_ndp bench_concurrency tpch_power_run \
  bench_costopt bench_fig7_scale_up

micro_json="$(mktemp /tmp/cloudiq_micro.XXXXXX.json)"
ndp_report="$(mktemp /tmp/cloudiq_ndp_report.XXXXXX.json)"
power_report="$(mktemp /tmp/cloudiq_power_report.XXXXXX.json)"
conc_report="$(mktemp /tmp/cloudiq_conc_report.XXXXXX.json)"
costopt_report="$(mktemp /tmp/cloudiq_costopt_report.XXXXXX.json)"
par_sim_report="$(mktemp /tmp/cloudiq_par_sim.XXXXXX.json)"
par_native_report="$(mktemp /tmp/cloudiq_par_native.XXXXXX.json)"
trap 'rm -f "${micro_json}" "${ndp_report}" "${power_report}" "${conc_report}" "${costopt_report}" "${par_sim_report}" "${par_native_report}"' EXIT

echo "=== bench_snapshot: bench_micro ==="
./build/bench/bench_micro --benchmark_format=json \
  --benchmark_out="${micro_json}" --benchmark_out_format=json > /dev/null

echo "=== bench_snapshot: bench_ndp (crossover sweep) ==="
./build/bench/bench_ndp --report="${ndp_report}"

echo "=== bench_snapshot: distill -> BENCH_ndp.json ==="
python3 - "${ndp_report}" "${micro_json}" BENCH_ndp.json <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    report = json.load(f)
with open(sys.argv[2]) as f:
    micro = json.load(f)

gauges = report["gauges"]  # {name: value}

# ndp.bench.<case>.<mode>.<metric> gauges -> nested snapshot table.
cases = {}
peak = {}
for name, value in gauges.items():
    parts = name.split(".")
    if parts[:2] != ["ndp", "bench"]:
        continue
    if parts[2] == "nic_peak_gbps":
        peak[parts[3]] = value
        continue
    case, mode, metric = parts[2], parts[3], ".".join(parts[4:])
    cases.setdefault(case, {}).setdefault(mode, {})[metric] = value

snapshot = {
    "bench": "bench_ndp",
    "scale_factor": report["scale_factor"],
    "cases": cases,
    "nic_peak_gbps": peak,
    "micro": [
        {"name": b["name"], "ns_per_op": b["cpu_time"]}
        for b in micro.get("benchmarks", [])
        if b.get("run_type", "iteration") == "iteration"
    ],
}

with open(sys.argv[3], "w") as f:
    json.dump(snapshot, f, indent=1, sort_keys=True)
    f.write("\n")

q6 = cases.get("q6_month", {})
if "off" in q6 and "on" in q6 and q6["on"].get("nic_bytes"):
    ratio = q6["off"]["nic_bytes"] / q6["on"]["nic_bytes"]
    print(f"q6_month NIC bytes off/on: {ratio:.1f}x")
print(f"wrote {sys.argv[3]}: {len(cases)} cases x "
      f"{len(next(iter(cases.values()), {}))} modes, "
      f"{len(snapshot['micro'])} micro benchmarks")
EOF

echo "=== bench_snapshot: tpch_power_run (stall profile, sequential) ==="
./build/examples/tpch_power_run --report="${power_report}" > /dev/null

echo "=== bench_snapshot: bench_concurrency (stall profile, multi-tenant) ==="
./build/bench/bench_concurrency --tenants=2 --arrival=2 --concurrency=2 \
  --report="${conc_report}" > /dev/null

echo "=== bench_snapshot: distill -> BENCH_profile.json ==="
python3 - "${power_report}" "${conc_report}" "${micro_json}" \
  BENCH_profile.json <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    power = json.load(f)
with open(sys.argv[2]) as f:
    conc = json.load(f)
with open(sys.argv[3]) as f:
    micro = json.load(f)


def stall_summary(report):
    """Per-class seconds of one report's stalls section (ns -> s so the
    snapshot diffs in the same unit the SLOs use)."""
    stalls = report["stalls"]
    total = stalls["total"]
    out = {
        "window_seconds": stalls["window_nanos"] / 1e9,
        "background_seconds": stalls["background_nanos"] / 1e9,
        "classes": {
            cls: ns / 1e9
            for cls, ns in total.items()
            if cls not in ("total_nanos", "background_nanos") and ns > 0
        },
    }
    return out


def tenant_stalls(report):
    out = {}
    for tenant in report.get("tenants", []):
        name = tenant.get("tenant", "")
        row = {
            k: v
            for k, v in tenant.items()
            if k.startswith("stall_") or k.startswith("slo_burn_")
        }
        if row:
            out[name] = row
    return out


snapshot = {
    "power": stall_summary(power),
    "concurrency": stall_summary(conc),
    "concurrency_tenants": tenant_stalls(conc),
    "scale_factor": power["scale_factor"],
    "micro": [
        {"name": b["name"], "ns_per_op": b["cpu_time"]}
        for b in micro.get("benchmarks", [])
        if b.get("run_type", "iteration") == "iteration"
    ],
}

with open(sys.argv[4], "w") as f:
    json.dump(snapshot, f, indent=1, sort_keys=True)
    f.write("\n")

print(f"wrote {sys.argv[4]}: "
      f"{len(snapshot['power']['classes'])} power stall classes, "
      f"{len(snapshot['concurrency']['classes'])} concurrency stall classes, "
      f"{len(snapshot['concurrency_tenants'])} tenants")
EOF

echo "=== bench_snapshot: bench_costopt (planning modes + budget guard) ==="
./build/bench/bench_costopt --report="${costopt_report}"

echo "=== bench_snapshot: distill -> BENCH_costopt.json ==="
python3 - "${costopt_report}" BENCH_costopt.json <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    report = json.load(f)

gauges = report["gauges"]  # {name: value}

# costopt.bench.<case>.<mode>.<metric> gauges, filtered to the metrics
# that are genuinely lower-is-better (spend, latency, prediction error,
# budget overshoot) so bench_compare.py's regression direction holds.
# Counts like completed / deferred are trajectory-neutral and stay out.
KEEP = {
    "usd", "mean_seconds", "p95_seconds", "prediction_error",
    "spent_usd", "overshoot_usd",
}
cases = {}
for name, value in gauges.items():
    parts = name.split(".")
    if parts[:2] != ["costopt", "bench"]:
        continue
    if len(parts) < 5 or parts[4] not in KEEP:
        continue
    case, mode, metric = parts[2], parts[3], ".".join(parts[4:])
    cases.setdefault(case, {}).setdefault(mode, {})[metric] = value

snapshot = {
    "bench": "bench_costopt",
    "scale_factor": report["scale_factor"],
    "cases": cases,
    "prediction_error": gauges.get("costopt.prediction_error", 0.0),
}

with open(sys.argv[2], "w") as f:
    json.dump(snapshot, f, indent=1, sort_keys=True)
    f.write("\n")

warm = cases.get("warm_rescan", {})
if "cost_blind_cold" in warm and "cost_aware" in warm:
    blind = warm["cost_blind_cold"].get("usd", 0.0)
    aware = warm["cost_aware"].get("usd", 0.0)
    print(f"warm_rescan usd cost_blind_cold ${blind:.6g} "
          f"-> cost_aware ${aware:.6g}")
print(f"wrote {sys.argv[2]}: {len(cases)} cases, "
      f"prediction_error {snapshot['prediction_error']:.3g}")
EOF

echo "=== bench_snapshot: bench_fig7_scale_up (morsel worker sweep, sim + native) ==="
./build/bench/bench_fig7_scale_up --quick --report="${par_sim_report}" \
  > /dev/null
./build/bench/bench_fig7_scale_up --quick --exec=native \
  --report="${par_native_report}" > /dev/null

echo "=== bench_snapshot: distill -> BENCH_parallel.json ==="
python3 - "${par_sim_report}" "${par_native_report}" \
  BENCH_parallel.json <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    sim = json.load(f)
with open(sys.argv[2]) as f:
    native = json.load(f)

sim_gauges = sim["gauges"]
native_gauges = native["gauges"]

# Deterministic simulated seconds: numbers, safe to gate (byte-identical
# across runs, modes and worker counts — the executor's determinism
# contract, enforced by scripts/check.sh parallel).
sim_seconds = {
    name.split(".")[-1]: value
    for name, value in sim_gauges.items()
    if name.startswith("parallel.bench.sim.")
}

# Native wall numbers: strings, recorded but never gated. Host wall time
# on a shared box is noisy, and speedup saturates at the core count — a
# 1-core container legitimately shows ~1.0x at every width.
native_walls = {}
for name, value in native_gauges.items():
    parts = name.split(".")
    if parts[:3] != ["parallel", "bench", "native"]:
        continue
    width, metric = parts[3], ".".join(parts[4:])
    native_walls.setdefault(width, {})[metric] = "%.6f" % value

snapshot = {
    "bench": "bench_fig7_scale_up",
    "scale_factor": sim["scale_factor"],
    "sim_seconds": sim_seconds,
    "native": native_walls,
    "hw_cores": "%d" % native_gauges.get("parallel.bench.hw_cores", 0),
    # Strings: deterministic but direction-free (more morsels is not
    # worse), so bench_compare.py must not treat growth as regression.
    "exec_counters": {
        "morsels": "%d" % sim.get("counters", {}).get("exec.morsels", 0),
        "parallel_sections": "%d"
            % sim.get("counters", {}).get("exec.parallel_sections", 0),
    },
}

with open(sys.argv[3], "w") as f:
    json.dump(snapshot, f, indent=1, sort_keys=True)
    f.write("\n")

print(f"wrote {sys.argv[3]}: sim q1 {sim_seconds.get('q1_seconds')}s / "
      f"q6 {sim_seconds.get('q6_seconds')}s, "
      f"{len(native_walls)} native widths on "
      f"{snapshot['hw_cores']} core(s)")
EOF
echo "=== bench_snapshot: OK ==="
