#!/usr/bin/env bash
# Tier-1 verification plus sanitizer sweeps.
#
#   scripts/check.sh            # build + ctest, report smoke, ASan, UBSan, TSan
#   scripts/check.sh asan       # just the AddressSanitizer pass
#   scripts/check.sh ubsan      # just the UndefinedBehaviorSanitizer pass
#   scripts/check.sh tsan       # just the ThreadSanitizer pass
#   scripts/check.sh plain      # just the uninstrumented build + tests
#   scripts/check.sh report     # just the --report JSON smoke check
#
# Each pass uses its own build tree (build/, build-asan/, build-ubsan/,
# build-tsan/) so the sweeps never poison the primary build's cache.

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

run_pass() {
  local name="$1" dir="$2" sanitize="$3"
  echo "=== ${name}: configure + build + ctest (${dir}) ==="
  cmake -B "${dir}" -S . -DCLOUDIQ_SANITIZE="${sanitize}" \
    > "${dir}-configure.log" 2>&1 || {
      cat "${dir}-configure.log"; return 1; }
  cmake --build "${dir}" -j "${JOBS}"
  (cd "${dir}" && ctest --output-on-failure -j "${JOBS}")
  echo "=== ${name}: OK ==="
}

# Runs one bench binary with --report and validates that the emitted JSON
# parses and carries the expected top-level keys, including the
# ledger-vs-meter USD agreement the attribution layer guarantees.
report_smoke() {
  echo "=== report: --report JSON smoke (build) ==="
  cmake -B build -S . > build-configure.log 2>&1 || {
    cat build-configure.log; return 1; }
  cmake --build build -j "${JOBS}" --target tpch_power_run
  local out
  out="$(mktemp /tmp/cloudiq_report.XXXXXX.json)"
  CLOUDIQ_BENCH_SF=0.002 ./build/examples/tpch_power_run \
    --report="${out}" > /dev/null
  python3 - "${out}" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    report = json.load(f)

expected = ["schema_version", "bench", "scale_factor", "sim_seconds",
            "cost", "queries", "nodes", "prefixes", "histograms",
            "counters", "gauges"]
missing = [k for k in expected if k not in report]
assert not missing, f"missing top-level keys: {missing}"
assert report["schema_version"] == 1, report["schema_version"]

cost = report["cost"]
assert "meter" in cost and "ledger" in cost, cost.keys()
meter_usd = cost["meter"]["request_usd"] + cost["meter"]["ec2_usd"]
ledger_usd = cost["ledger"]["total_usd"]
assert abs(meter_usd - ledger_usd) < 1e-6, (meter_usd, ledger_usd)

assert report["queries"], "no queries attributed"
per_query = sum(q["total_usd"] for q in report["queries"])
assert abs(per_query - ledger_usd) < 1e-6, (per_query, ledger_usd)
print(f"report OK: {len(report['queries'])} queries, "
      f"ledger ${ledger_usd:.6f} == meter ${meter_usd:.6f}")
EOF
  rm -f "${out}"
  echo "=== report: OK ==="
}

what="${1:-all}"
case "${what}" in
  plain)  run_pass "plain" build "" ;;
  asan)   run_pass "ASan"  build-asan address ;;
  ubsan)  run_pass "UBSan" build-ubsan undefined ;;
  tsan)   run_pass "TSan"  build-tsan thread ;;
  report) report_smoke ;;
  all)
    run_pass "plain" build ""
    report_smoke
    run_pass "ASan"  build-asan address
    run_pass "UBSan" build-ubsan undefined
    run_pass "TSan"  build-tsan thread
    ;;
  *)
    echo "usage: $0 [all|plain|asan|ubsan|tsan|report]" >&2
    exit 2
    ;;
esac
