#!/usr/bin/env bash
# Tier-1 verification plus sanitizer sweeps.
#
#   scripts/check.sh            # plain build + ctest, then ASan and UBSan
#   scripts/check.sh asan       # just the AddressSanitizer pass
#   scripts/check.sh ubsan      # just the UndefinedBehaviorSanitizer pass
#   scripts/check.sh plain      # just the uninstrumented build + tests
#
# Each pass uses its own build tree (build/, build-asan/, build-ubsan/) so
# the sweeps never poison the primary build's cache.

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

run_pass() {
  local name="$1" dir="$2" sanitize="$3"
  echo "=== ${name}: configure + build + ctest (${dir}) ==="
  cmake -B "${dir}" -S . -DCLOUDIQ_SANITIZE="${sanitize}" \
    > "${dir}-configure.log" 2>&1 || {
      cat "${dir}-configure.log"; return 1; }
  cmake --build "${dir}" -j "${JOBS}"
  (cd "${dir}" && ctest --output-on-failure -j "${JOBS}")
  echo "=== ${name}: OK ==="
}

what="${1:-all}"
case "${what}" in
  plain) run_pass "plain" build "" ;;
  asan)  run_pass "ASan"  build-asan address ;;
  ubsan) run_pass "UBSan" build-ubsan undefined ;;
  tsan)  run_pass "TSan"  build-tsan thread ;;
  all)
    run_pass "plain" build ""
    run_pass "ASan"  build-asan address
    run_pass "UBSan" build-ubsan undefined
    ;;
  *)
    echo "usage: $0 [all|plain|asan|ubsan|tsan]" >&2
    exit 2
    ;;
esac
