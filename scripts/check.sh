#!/usr/bin/env bash
# Tier-1 verification plus sanitizer sweeps.
#
#   scripts/check.sh            # lint + determinism + build + ctest,
#                               # report + stress smoke, tidy,
#                               # ASan, UBSan, TSan
#   scripts/check.sh asan       # just the AddressSanitizer pass
#   scripts/check.sh ubsan      # just the UndefinedBehaviorSanitizer pass
#   scripts/check.sh tsan       # just the ThreadSanitizer pass
#   scripts/check.sh plain      # just the uninstrumented build + tests
#   scripts/check.sh report     # just the --report JSON smoke check
#   scripts/check.sh stress     # concurrency bench smoke under ASan + TSan
#   scripts/check.sh lint       # cloudiq_lint.py rules + its unit tests
#   scripts/check.sh tidy       # clang-tidy + Clang -Wthread-safety gate
#                               # (skips with a notice if clang is absent)
#   scripts/check.sh determinism # run tpch_power_run --report twice with
#                               # the fixed seed and byte-compare the JSON
#   scripts/check.sh ndp        # bench_ndp smoke: crossover checks pass,
#                               # double-run --report byte-identical, and
#                               # a run under ASan
#   scripts/check.sh profile    # stall-profiler gate: conservation
#                               # invariant on the report JSON (single-
#                               # node and multi-tenant), double-run
#                               # byte-compare with stalls included, and
#                               # a --profile run under ASan
#   scripts/check.sh costopt    # bench_costopt smoke: cost-aware planning
#                               # dominates cost-blind, predictive
#                               # admission holds the budget, double-run
#                               # --report byte-identical, and a run
#                               # under ASan
#   scripts/check.sh locks      # lock-order gate: cloudiq_locks.py
#                               # fixture tests, whole-tree analysis
#                               # against LOCKS.md, generated rank-header
#                               # freshness, the runtime tripwire tests
#                               # with the observer force-enabled, and a
#                               # double-run byte-compare proving the
#                               # tripwire never perturbs the simulation
#   scripts/check.sh parallel   # morsel-executor gate: scale-up bench
#                               # --report byte-identical across double
#                               # runs and across --workers=1 vs 8,
#                               # stall conservation (incl. per-entry
#                               # telescoping) on the parallel report,
#                               # stall_top fixture tests, and the
#                               # native worker sweep under TSan
#
# Each pass uses its own build tree (build/, build-asan/, build-ubsan/,
# build-tsan/) so the sweeps never poison the primary build's cache.

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

run_pass() {
  local name="$1" dir="$2" sanitize="$3"
  echo "=== ${name}: configure + build + ctest (${dir}) ==="
  cmake -B "${dir}" -S . -DCLOUDIQ_SANITIZE="${sanitize}" \
    > "${dir}-configure.log" 2>&1 || {
      cat "${dir}-configure.log"; return 1; }
  cmake --build "${dir}" -j "${JOBS}"
  (cd "${dir}" && ctest --output-on-failure -j "${JOBS}")
  echo "=== ${name}: OK ==="
}

# Runs one bench binary with --report and validates that the emitted JSON
# parses and carries the expected top-level keys, including the
# ledger-vs-meter USD agreement the attribution layer guarantees.
report_smoke() {
  echo "=== report: --report JSON smoke (build) ==="
  cmake -B build -S . > build-configure.log 2>&1 || {
    cat build-configure.log; return 1; }
  cmake --build build -j "${JOBS}" --target tpch_power_run
  local out
  out="$(mktemp /tmp/cloudiq_report.XXXXXX.json)"
  CLOUDIQ_BENCH_SF=0.002 ./build/examples/tpch_power_run \
    --report="${out}" > /dev/null
  python3 - "${out}" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    report = json.load(f)

expected = ["schema_version", "bench", "scale_factor", "sim_seconds",
            "cost", "queries", "nodes", "tenants", "prefixes",
            "histograms", "counters", "gauges"]
missing = [k for k in expected if k not in report]
assert not missing, f"missing top-level keys: {missing}"
assert report["schema_version"] == 1, report["schema_version"]

cost = report["cost"]
assert "meter" in cost and "ledger" in cost, cost.keys()
meter_usd = cost["meter"]["request_usd"] + cost["meter"]["ec2_usd"]
ledger_usd = cost["ledger"]["total_usd"]
assert abs(meter_usd - ledger_usd) < 1e-6, (meter_usd, ledger_usd)

assert report["queries"], "no queries attributed"
per_query = sum(q["total_usd"] for q in report["queries"])
assert abs(per_query - ledger_usd) < 1e-6, (per_query, ledger_usd)
print(f"report OK: {len(report['queries'])} queries, "
      f"ledger ${ledger_usd:.6f} == meter ${meter_usd:.6f}")
EOF
  rm -f "${out}"
  echo "=== report: OK ==="
}

# Runs the concurrency bench (one pinned multi-tenant configuration, tiny
# scale factor) under a sanitizer. The workload engine drives real fibers
# through a strict handoff protocol — exactly the code ASan and TSan are
# best placed to vet, and far more schedule pressure than the unit tests.
stress_one() {
  local sanitize="$1" dir="$2"
  echo "--- stress (${sanitize}): build + run bench_concurrency"
  cmake -B "${dir}" -S . -DCLOUDIQ_SANITIZE="${sanitize}" \
    > "${dir}-configure.log" 2>&1 || {
      cat "${dir}-configure.log"; return 1; }
  cmake --build "${dir}" -j "${JOBS}" --target bench_concurrency
  CLOUDIQ_BENCH_SF=0.002 "./${dir}/bench/bench_concurrency" \
    --tenants=2 --arrival=2 --concurrency=2 > /dev/null
  echo "--- stress (${sanitize}): OK"
}

stress_smoke() {
  echo "=== stress: concurrency bench smoke under ASan + TSan ==="
  stress_one address build-asan
  stress_one thread build-tsan
  echo "=== stress: OK ==="
}

# Project linter (determinism + storage-policy rules) and its own tests.
lint_pass() {
  echo "=== lint: cloudiq_lint.py over src bench tests examples ==="
  python3 tools/cloudiq_lint_test.py
  python3 tools/cloudiq_lint.py src bench tests examples
  echo "=== lint: OK ==="
}

# clang-tidy over the library sources plus the Clang thread-safety
# analysis gate (-Wthread-safety -Werror). Both need LLVM tooling; when
# the container only ships GCC the pass reports SKIPPED instead of
# silently passing, so CI logs show exactly what ran.
tidy_pass() {
  echo "=== tidy: clang-tidy + -Wthread-safety gate ==="
  local src_files
  src_files="$(find src -name '*.cc' | sort)"
  local ran_anything=0
  if command -v clang++ > /dev/null 2>&1; then
    ran_anything=1
    echo "--- tidy: clang++ -Wthread-safety -Werror (syntax-only)"
    # shellcheck disable=SC2086
    clang++ -std=c++20 -Isrc -fsyntax-only \
      -Wthread-safety -Wthread-safety-beta -Werror ${src_files}
    echo "--- tidy: thread-safety analysis clean"
  else
    echo "--- tidy: SKIPPED thread-safety gate (no clang++ in PATH)"
  fi
  if command -v clang-tidy > /dev/null 2>&1; then
    ran_anything=1
    echo "--- tidy: clang-tidy (.clang-tidy config)"
    # shellcheck disable=SC2086
    clang-tidy --quiet ${src_files} -- -std=c++20 -Isrc
    echo "--- tidy: clang-tidy clean"
  else
    echo "--- tidy: SKIPPED clang-tidy (not in PATH)"
  fi
  if [ "${ran_anything}" = 0 ]; then
    echo "=== tidy: SKIPPED (no LLVM tooling available) ==="
  else
    echo "=== tidy: OK ==="
  fi
}

# Determinism contract (EXPERIMENTS.md): the same seed must produce a
# byte-identical --report JSON, twice in a row, fresh process each time.
determinism_pass() {
  echo "=== determinism: double-run byte-compare of --report JSON ==="
  cmake -B build -S . > build-configure.log 2>&1 || {
    cat build-configure.log; return 1; }
  cmake --build build -j "${JOBS}" --target tpch_power_run
  local out1 out2
  out1="$(mktemp /tmp/cloudiq_det1.XXXXXX.json)"
  out2="$(mktemp /tmp/cloudiq_det2.XXXXXX.json)"
  CLOUDIQ_BENCH_SF=0.002 ./build/examples/tpch_power_run \
    --report="${out1}" > /dev/null
  CLOUDIQ_BENCH_SF=0.002 ./build/examples/tpch_power_run \
    --report="${out2}" > /dev/null
  if ! cmp -s "${out1}" "${out2}"; then
    echo "determinism FAILED: reports differ" >&2
    diff "${out1}" "${out2}" | head -40 >&2 || true
    rm -f "${out1}" "${out2}"
    return 1
  fi
  echo "reports byte-identical ($(wc -c < "${out1}") bytes)"
  rm -f "${out1}" "${out2}"
  echo "=== determinism: OK ==="
}

# Near-data processing smoke: bench_ndp's own exit status enforces the
# crossover claims (>= 5x NIC-byte reduction on the Q6-style scan, auto
# pushes selective scans and pulls the join-heavy one, identical results
# across modes); on top of that the --report JSON must be byte-identical
# across double runs, and the whole sweep must be clean under ASan.
ndp_pass() {
  echo "=== ndp: bench_ndp crossover + determinism + ASan ==="
  cmake -B build -S . > build-configure.log 2>&1 || {
    cat build-configure.log; return 1; }
  cmake --build build -j "${JOBS}" --target bench_ndp
  local out1 out2
  out1="$(mktemp /tmp/cloudiq_ndp1.XXXXXX.json)"
  out2="$(mktemp /tmp/cloudiq_ndp2.XXXXXX.json)"
  CLOUDIQ_BENCH_SF=0.005 ./build/bench/bench_ndp --report="${out1}" \
    > /dev/null
  CLOUDIQ_BENCH_SF=0.005 ./build/bench/bench_ndp --report="${out2}" \
    > /dev/null
  if ! cmp -s "${out1}" "${out2}"; then
    echo "ndp determinism FAILED: reports differ" >&2
    diff "${out1}" "${out2}" | head -40 >&2 || true
    rm -f "${out1}" "${out2}"
    return 1
  fi
  echo "--- ndp: reports byte-identical ($(wc -c < "${out1}") bytes)"
  rm -f "${out1}" "${out2}"
  echo "--- ndp: ASan run"
  cmake -B build-asan -S . -DCLOUDIQ_SANITIZE=address \
    > build-asan-configure.log 2>&1 || {
      cat build-asan-configure.log; return 1; }
  cmake --build build-asan -j "${JOBS}" --target bench_ndp
  CLOUDIQ_BENCH_SF=0.005 ./build-asan/bench/bench_ndp > /dev/null
  echo "=== ndp: OK ==="
}

# Stall-profiler gate. Three legs:
#   1. conservation — tools/stall_top.py --check recomputes, from the
#      JSON alone, that every entry's classes sum to its total and the
#      totals sum to window + background nanos; run against both the
#      sequential power run and the multi-tenant concurrency bench
#      (interleaved fibers are where mis-bracketed scopes would show);
#   2. determinism — the report (stalls section included) must stay
#      byte-identical across double runs at the fixed seed, with
#      --profile on so the stall-top printer path is exercised too;
#   3. ASan — the concurrency bench under --profile, since frame swaps
#      and scope stacks are fresh pointer-juggling code.
profile_pass() {
  echo "=== profile: stall conservation + determinism + ASan ==="
  cmake -B build -S . > build-configure.log 2>&1 || {
    cat build-configure.log; return 1; }
  cmake --build build -j "${JOBS}" --target tpch_power_run bench_concurrency
  local out1 out2 conc
  out1="$(mktemp /tmp/cloudiq_prof1.XXXXXX.json)"
  out2="$(mktemp /tmp/cloudiq_prof2.XXXXXX.json)"
  conc="$(mktemp /tmp/cloudiq_prof_conc.XXXXXX.json)"
  CLOUDIQ_BENCH_SF=0.002 ./build/examples/tpch_power_run \
    --profile --report="${out1}" > /dev/null
  CLOUDIQ_BENCH_SF=0.002 ./build/examples/tpch_power_run \
    --profile --report="${out2}" > /dev/null
  echo "--- profile: conservation (tpch_power_run)"
  python3 tools/stall_top.py --check "${out1}"
  if ! cmp -s "${out1}" "${out2}"; then
    echo "profile determinism FAILED: reports differ" >&2
    diff "${out1}" "${out2}" | head -40 >&2 || true
    rm -f "${out1}" "${out2}" "${conc}"
    return 1
  fi
  echo "--- profile: reports byte-identical ($(wc -c < "${out1}") bytes)"
  echo "--- profile: conservation (bench_concurrency, multi-tenant)"
  CLOUDIQ_BENCH_SF=0.002 ./build/bench/bench_concurrency \
    --tenants=2 --arrival=2 --concurrency=2 --profile \
    --report="${conc}" > /dev/null
  python3 tools/stall_top.py --check "${conc}"
  rm -f "${out1}" "${out2}" "${conc}"
  echo "--- profile: ASan run"
  cmake -B build-asan -S . -DCLOUDIQ_SANITIZE=address \
    > build-asan-configure.log 2>&1 || {
      cat build-asan-configure.log; return 1; }
  cmake --build build-asan -j "${JOBS}" --target bench_concurrency
  CLOUDIQ_BENCH_SF=0.002 ./build-asan/bench/bench_concurrency \
    --tenants=2 --arrival=2 --concurrency=2 --profile > /dev/null
  echo "=== profile: OK ==="
}

# Cost-intelligent planning smoke: bench_costopt's own exit status
# enforces the headline claims (cost-aware strictly dominates the
# cost-blind cold-pricing planner on the warm-rescan mix, predictive
# admission defers instead of overshooting the budget); on top of that
# the --report JSON — which carries the costopt.prediction_error gauge
# and the whole decision trail — must be byte-identical across double
# runs, and the bench must be clean under ASan.
costopt_pass() {
  echo "=== costopt: bench_costopt dominance + determinism + ASan ==="
  cmake -B build -S . > build-configure.log 2>&1 || {
    cat build-configure.log; return 1; }
  cmake --build build -j "${JOBS}" --target bench_costopt
  local out1 out2
  out1="$(mktemp /tmp/cloudiq_costopt1.XXXXXX.json)"
  out2="$(mktemp /tmp/cloudiq_costopt2.XXXXXX.json)"
  CLOUDIQ_BENCH_SF=0.005 ./build/bench/bench_costopt --report="${out1}" \
    > /dev/null
  CLOUDIQ_BENCH_SF=0.005 ./build/bench/bench_costopt --report="${out2}" \
    > /dev/null
  if ! cmp -s "${out1}" "${out2}"; then
    echo "costopt determinism FAILED: reports differ" >&2
    diff "${out1}" "${out2}" | head -40 >&2 || true
    rm -f "${out1}" "${out2}"
    return 1
  fi
  echo "--- costopt: reports byte-identical ($(wc -c < "${out1}") bytes)"
  rm -f "${out1}" "${out2}"
  echo "--- costopt: ASan run"
  cmake -B build-asan -S . -DCLOUDIQ_SANITIZE=address \
    > build-asan-configure.log 2>&1 || {
      cat build-asan-configure.log; return 1; }
  cmake --build build-asan -j "${JOBS}" --target bench_costopt
  CLOUDIQ_BENCH_SF=0.005 ./build-asan/bench/bench_costopt > /dev/null
  echo "=== costopt: OK ==="
}

# Lock-order gate. Static side first: the analyzer's own fixture tests,
# then the whole-tree run against the LOCKS.md rank manifest (any
# unregistered mutex, rank inversion, deadlock cycle, or lock held
# across a callback / simulated I/O fails here — loudly, never SKIP),
# then the freshness check tying src/common/lock_ranks.h to the
# manifest. Dynamic side second: the tripwire regression tests with the
# observer force-enabled, the seed-swept interleaving stress, and a
# double-run byte-compare showing the tripwire's bookkeeping never
# changes simulation output.
locks_pass() {
  echo "=== locks: analyzer + manifest + tripwire + determinism ==="
  echo "--- locks: cloudiq_locks.py fixture tests"
  python3 tools/cloudiq_locks_test.py
  echo "--- locks: whole-tree lock-graph analysis vs LOCKS.md"
  python3 tools/cloudiq_locks.py src
  echo "--- locks: generated rank header is fresh"
  python3 tools/cloudiq_locks.py --check-ranks src/common/lock_ranks.h
  echo "--- locks: tripwire regression + interleaving stress (observer on)"
  cmake -B build -S . > build-configure.log 2>&1 || {
    cat build-configure.log; return 1; }
  cmake --build build -j "${JOBS}" --target lock_rank_test lock_stress_test \
    tpch_power_run
  CLOUDIQ_LOCK_RANK_CHECK=1 ./build/tests/lock_rank_test
  CLOUDIQ_LOCK_RANK_CHECK=1 ./build/tests/lock_stress_test
  echo "--- locks: tripwire-on double-run byte-compare"
  local out1 out2
  out1="$(mktemp /tmp/cloudiq_locks1.XXXXXX.json)"
  out2="$(mktemp /tmp/cloudiq_locks2.XXXXXX.json)"
  CLOUDIQ_LOCK_RANK_CHECK=1 CLOUDIQ_BENCH_SF=0.002 \
    ./build/examples/tpch_power_run --report="${out1}" > /dev/null
  CLOUDIQ_LOCK_RANK_CHECK=1 CLOUDIQ_BENCH_SF=0.002 \
    ./build/examples/tpch_power_run --report="${out2}" > /dev/null
  if ! cmp -s "${out1}" "${out2}"; then
    echo "locks determinism FAILED: reports differ with tripwire on" >&2
    diff "${out1}" "${out2}" | head -40 >&2 || true
    rm -f "${out1}" "${out2}"
    return 1
  fi
  echo "--- locks: reports byte-identical ($(wc -c < "${out1}") bytes)"
  rm -f "${out1}" "${out2}"
  echo "=== locks: OK ==="
}

# Morsel-executor gate. Four legs:
#   1. sim determinism — the scale-up bench's --report (stalls included)
#      must be byte-identical across double runs AND across executor
#      worker counts (--workers=1 vs --workers=8), since sim mode charges
#      morsels to the simulated clock in a fixed order regardless of
#      parallel width;
#   2. conservation — tools/stall_top.py --check on the parallel report,
#      now including the per-entry telescoping check (a parallel
#      section's lane totals must sum to each entry's declared total);
#   3. the checker's own fixture tests (stall_top_test.py);
#   4. TSan — the native-mode worker sweep under ThreadSanitizer, the
#      one place real threads race over morsel queues and fragments.
parallel_pass() {
  echo "=== parallel: morsel executor determinism + conservation + TSan ==="
  cmake -B build -S . > build-configure.log 2>&1 || {
    cat build-configure.log; return 1; }
  cmake --build build -j "${JOBS}" --target bench_fig7_scale_up
  local out1 out2 w1 w8
  out1="$(mktemp /tmp/cloudiq_par1.XXXXXX.json)"
  out2="$(mktemp /tmp/cloudiq_par2.XXXXXX.json)"
  w1="$(mktemp /tmp/cloudiq_parw1.XXXXXX.json)"
  w8="$(mktemp /tmp/cloudiq_parw8.XXXXXX.json)"
  CLOUDIQ_BENCH_SF=0.01 ./build/bench/bench_fig7_scale_up --quick \
    --report="${out1}" > /dev/null
  CLOUDIQ_BENCH_SF=0.01 ./build/bench/bench_fig7_scale_up --quick \
    --report="${out2}" > /dev/null
  if ! cmp -s "${out1}" "${out2}"; then
    echo "parallel determinism FAILED: double-run reports differ" >&2
    diff "${out1}" "${out2}" | head -40 >&2 || true
    rm -f "${out1}" "${out2}" "${w1}" "${w8}"
    return 1
  fi
  echo "--- parallel: double-run reports byte-identical ($(wc -c < "${out1}") bytes)"
  CLOUDIQ_BENCH_SF=0.01 ./build/bench/bench_fig7_scale_up --quick \
    --workers=1 --report="${w1}" > /dev/null
  CLOUDIQ_BENCH_SF=0.01 ./build/bench/bench_fig7_scale_up --quick \
    --workers=8 --report="${w8}" > /dev/null
  if ! cmp -s "${w1}" "${w8}"; then
    echo "parallel determinism FAILED: sim report depends on worker count" >&2
    diff "${w1}" "${w8}" | head -40 >&2 || true
    rm -f "${out1}" "${out2}" "${w1}" "${w8}"
    return 1
  fi
  echo "--- parallel: --workers=1 vs --workers=8 reports byte-identical"
  echo "--- parallel: stall conservation on the parallel report"
  python3 tools/stall_top.py --check "${out1}"
  rm -f "${out1}" "${out2}" "${w1}" "${w8}"
  echo "--- parallel: stall_top checker fixture tests"
  python3 tools/stall_top_test.py
  echo "--- parallel: TSan native worker sweep"
  cmake -B build-tsan -S . -DCLOUDIQ_SANITIZE=thread \
    > build-tsan-configure.log 2>&1 || {
      cat build-tsan-configure.log; return 1; }
  cmake --build build-tsan -j "${JOBS}" --target bench_fig7_scale_up
  CLOUDIQ_BENCH_SF=0.005 ./build-tsan/bench/bench_fig7_scale_up --quick \
    --exec=native > /dev/null
  echo "=== parallel: OK ==="
}

what="${1:-all}"
case "${what}" in
  plain)  run_pass "plain" build "" ;;
  asan)   run_pass "ASan"  build-asan address ;;
  ubsan)  run_pass "UBSan" build-ubsan undefined ;;
  tsan)   run_pass "TSan"  build-tsan thread ;;
  report) report_smoke ;;
  stress) stress_smoke ;;
  lint)   lint_pass ;;
  tidy)   tidy_pass ;;
  determinism) determinism_pass ;;
  ndp) ndp_pass ;;
  profile) profile_pass ;;
  costopt) costopt_pass ;;
  locks) locks_pass ;;
  parallel) parallel_pass ;;
  all)
    lint_pass
    locks_pass
    run_pass "plain" build ""
    report_smoke
    determinism_pass
    ndp_pass
    profile_pass
    costopt_pass
    parallel_pass
    tidy_pass
    run_pass "ASan"  build-asan address
    run_pass "UBSan" build-ubsan undefined
    run_pass "TSan"  build-tsan thread
    stress_smoke
    ;;
  *)
    echo "usage: $0 [all|plain|asan|ubsan|tsan|report|stress|lint|tidy|determinism|ndp|profile|costopt|locks|parallel]" >&2
    exit 2
    ;;
esac
