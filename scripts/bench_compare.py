#!/usr/bin/env python3
"""bench_compare: diff two bench snapshots and flag regressions.

Compares the numeric leaves of two snapshot JSONs produced by
scripts/bench_snapshot.sh (BENCH_profile.json, BENCH_ndp.json — any
nested dict/list-of-{name,...} structure works) and reports every metric
that moved by more than the threshold. All snapshot metrics are
lower-is-better (seconds stalled, ns/op, bytes moved, dollars), so an
increase past the threshold is a regression and fails the exit status;
a matching decrease is printed as an improvement but never fails.

Usage:
  scripts/bench_compare.py OLD.json NEW.json [--threshold 0.10]
  scripts/bench_compare.py --allow-regressions OLD.json NEW.json

Exit status: 0 when no regression exceeds the threshold, 1 otherwise
(unless --allow-regressions). New or vanished metrics are reported but
do not fail — adding an instrument is not a slowdown.
"""

import argparse
import json
import sys


def flatten(node, prefix, out):
    """Numeric leaves of nested dicts/lists as {dotted.path: value}.
    Lists of objects with a `name` key (the micro table) are keyed by
    name, so reordered benchmarks still line up."""
    if isinstance(node, dict):
        for key in sorted(node):
            flatten(node[key], f"{prefix}.{key}" if prefix else str(key), out)
    elif isinstance(node, list):
        for i, item in enumerate(node):
            if isinstance(item, dict) and "name" in item:
                key = str(item["name"])
            else:
                key = str(i)
            flatten(item, f"{prefix}[{key}]", out)
    elif isinstance(node, bool):
        pass  # bools are not magnitudes
    elif isinstance(node, (int, float)):
        out[prefix] = float(node)
    # strings (names already used as keys) carry no magnitude


class SkipComparison(Exception):
    """Raised when a snapshot is missing or empty: comparison is
    impossible but that is not a regression — a fresh checkout has no
    baseline yet."""


def load_flat(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            text = f.read()
    except OSError as err:
        raise SkipComparison(f"{path}: {err.strerror or err}") from err
    if not text.strip():
        raise SkipComparison(f"{path}: empty snapshot")
    try:
        snapshot = json.loads(text)
    except json.JSONDecodeError as err:
        raise SkipComparison(f"{path}: not valid JSON ({err})") from err
    flat = {}
    flatten(snapshot, "", flat)
    # The name keys themselves double as labels; drop self-referential
    # leaves like "...[foo].name".
    return {k: v for k, v in flat.items() if not k.endswith(".name")}


def main(argv):
    parser = argparse.ArgumentParser(
        description="diff two bench snapshots, flag >threshold regressions"
    )
    parser.add_argument("old", help="baseline snapshot JSON")
    parser.add_argument("new", help="candidate snapshot JSON")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.10,
        help="relative change that counts as a regression (default 0.10)",
    )
    parser.add_argument(
        "--allow-regressions",
        action="store_true",
        help="report regressions but exit 0 anyway",
    )
    args = parser.parse_args(argv)

    try:
        old = load_flat(args.old)
        new = load_flat(args.new)
    except SkipComparison as skip:
        print(f"SKIP: {skip}", file=sys.stderr)
        print(
            "SKIP: no usable baseline to compare against; run "
            "scripts/bench_snapshot.sh to create one",
            file=sys.stderr,
        )
        return 0

    regressions = []
    improvements = []
    for key in sorted(set(old) & set(new)):
        before, after = old[key], new[key]
        if before == after:
            continue
        if before == 0:
            # Zero baseline: any appearance of time/cost is reported as a
            # regression candidate, but tiny absolutes are noise.
            if after > 1e-9:
                regressions.append((key, before, after, float("inf")))
            continue
        rel = (after - before) / abs(before)
        if rel > args.threshold:
            regressions.append((key, before, after, rel))
        elif rel < -args.threshold:
            improvements.append((key, before, after, rel))

    for key, before, after, rel in improvements:
        print(f"improved   {key}: {before:g} -> {after:g} ({rel:+.1%})")
    for key in sorted(set(new) - set(old)):
        print(f"new metric {key}: {new[key]:g}")
    for key in sorted(set(old) - set(new)):
        print(f"gone       {key} (was {old[key]:g})")
    for key, before, after, rel in regressions:
        pct = "new" if rel == float("inf") else f"{rel:+.1%}"
        print(f"REGRESSED  {key}: {before:g} -> {after:g} ({pct})")

    compared = len(set(old) & set(new))
    print(
        f"compared {compared} metrics: {len(regressions)} regressed, "
        f"{len(improvements)} improved "
        f"(threshold {args.threshold:.0%})"
    )
    if regressions and not args.allow_regressions:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
